// Functions, variable declarations and programs of the ARGO IR.
//
// A Function owns its body (a statement Block) and a symbol table of typed
// variable declarations, each tagged with a role (input / output / state /
// temp / constant) and a storage class (local / scratchpad / shared). The
// symbol table is the single source of truth the whole tool-chain shares:
// the evaluator allocates environments from it, the WCET analysis prices
// accesses by its storage classes, the scratchpad allocator rewrites them,
// and the task extractor derives communication volumes from them.
//
// Invariants: every VarRef in the body refers to a declared variable;
// declarations are unique by name; clone() produces a deep copy with no
// pointers into the original (the toolchain relies on this to keep the
// caller's model untouched).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/stmt.h"
#include "ir/type.h"

namespace argo::ir {

/// Where a variable lives on the target platform. The scratchpad allocator
/// (src/transform) rewrites Shared -> Scratchpad for profitable variables;
/// the timing model charges different access costs per storage class
/// (paper Section III-B: scratchpads preferred to caches).
enum class Storage : std::uint8_t {
  Local,       ///< Core-private register/stack storage; cheapest access.
  Scratchpad,  ///< Core-private scratchpad memory (SPM).
  Shared,      ///< Off-tile shared memory reached over the interconnect.
};

[[nodiscard]] const char* storageName(Storage storage) noexcept;

/// Role of a declared variable with respect to the enclosing function.
enum class VarRole : std::uint8_t {
  Input,   ///< Read-only function input.
  Output,  ///< Function result written by the body.
  State,   ///< Persistent across invocations (e.g. Delay block state).
  Temp,    ///< Function-local temporary.
  Const,   ///< Read-only data initialized once (lookup tables, kernels).
};

[[nodiscard]] const char* varRoleName(VarRole role) noexcept;

/// A declared variable.
struct VarDecl {
  std::string name;
  Type type;
  VarRole role = VarRole::Temp;
  Storage storage = Storage::Shared;
};

/// A function: declarations plus a structured body.
///
/// ARGO functions communicate exclusively through declared Input/Output/State
/// variables (no return values); this matches the dataflow front end where a
/// function implements one synchronous step of the model.
class Function {
 public:
  explicit Function(std::string name) : name_(std::move(name)) {
    body_ = std::make_unique<Block>();
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Declares a variable. Throws ToolchainError on duplicate names.
  VarDecl& declare(VarDecl decl);
  VarDecl& declare(std::string name, Type type, VarRole role = VarRole::Temp,
                   Storage storage = Storage::Shared);

  [[nodiscard]] const VarDecl* find(const std::string& name) const noexcept;
  [[nodiscard]] VarDecl* find(const std::string& name) noexcept;
  /// Like find() but throws ToolchainError when absent.
  [[nodiscard]] const VarDecl& lookup(const std::string& name) const;

  [[nodiscard]] const std::vector<VarDecl>& decls() const noexcept {
    return decls_;
  }
  [[nodiscard]] std::vector<VarDecl>& decls() noexcept { return decls_; }

  [[nodiscard]] const Block& body() const noexcept { return *body_; }
  [[nodiscard]] Block& body() noexcept { return *body_; }
  void setBody(std::unique_ptr<Block> body) noexcept {
    body_ = std::move(body);
  }

  [[nodiscard]] std::unique_ptr<Function> clone() const;

  /// Total byte size of all declared variables with the given storage class.
  [[nodiscard]] std::int64_t storageBytes(Storage storage) const noexcept;

 private:
  std::string name_;
  std::vector<VarDecl> decls_;
  std::unordered_map<std::string, std::size_t> index_;
  std::unique_ptr<Block> body_;
};

/// A compiled application: one or more functions. The entry function is the
/// synchronous step of the model, conventionally named "step".
class Program {
 public:
  Function& add(std::unique_ptr<Function> fn);
  [[nodiscard]] const Function* find(const std::string& name) const noexcept;
  [[nodiscard]] Function* find(const std::string& name) noexcept;
  [[nodiscard]] const std::vector<std::unique_ptr<Function>>& functions()
      const noexcept {
    return functions_;
  }

 private:
  std::vector<std::unique_ptr<Function>> functions_;
};

/// Structural validation: every referenced variable is declared, index
/// counts match ranks, loop steps positive, loop variables do not shadow
/// declared variables. Returns problems as strings; empty means valid.
[[nodiscard]] std::vector<std::string> validate(const Function& fn);

}  // namespace argo::ir
