// Convenience factory functions for constructing IR trees.
//
// The model compiler, the Scilab front end, the transformation passes and
// the tests all build IR; these helpers keep that code readable:
//
//   auto s = assign(ref("y", {var("i")}),
//                   add(mul(ref("a", {var("i")}), flt(2.0)), ref("b")));
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ir/expr.h"
#include "ir/stmt.h"

namespace argo::ir {

[[nodiscard]] inline ExprPtr lit(std::int64_t v) {
  return std::make_unique<IntLit>(v);
}
[[nodiscard]] inline ExprPtr flt(double v) {
  return std::make_unique<FloatLit>(v);
}
[[nodiscard]] inline ExprPtr boolean(bool v) {
  return std::make_unique<BoolLit>(v);
}

/// Scalar variable reference (also used for loop variables).
[[nodiscard]] inline std::unique_ptr<VarRef> ref(std::string name) {
  return std::make_unique<VarRef>(std::move(name));
}

/// Indexed array reference.
[[nodiscard]] inline std::unique_ptr<VarRef> ref(std::string name,
                                                 std::vector<ExprPtr> idx) {
  return std::make_unique<VarRef>(std::move(name), std::move(idx));
}

[[nodiscard]] inline ExprPtr var(std::string name) {
  return ref(std::move(name));
}

/// Builds an index vector from expression arguments.
template <typename... Args>
[[nodiscard]] std::vector<ExprPtr> exprVec(Args... args) {
  std::vector<ExprPtr> out;
  out.reserve(sizeof...(args));
  (out.push_back(std::move(args)), ...);
  return out;
}

[[nodiscard]] inline ExprPtr bin(BinOpKind op, ExprPtr a, ExprPtr b) {
  return std::make_unique<BinOp>(op, std::move(a), std::move(b));
}
[[nodiscard]] inline ExprPtr add(ExprPtr a, ExprPtr b) {
  return bin(BinOpKind::Add, std::move(a), std::move(b));
}
[[nodiscard]] inline ExprPtr sub(ExprPtr a, ExprPtr b) {
  return bin(BinOpKind::Sub, std::move(a), std::move(b));
}
[[nodiscard]] inline ExprPtr mul(ExprPtr a, ExprPtr b) {
  return bin(BinOpKind::Mul, std::move(a), std::move(b));
}
[[nodiscard]] inline ExprPtr div(ExprPtr a, ExprPtr b) {
  return bin(BinOpKind::Div, std::move(a), std::move(b));
}
[[nodiscard]] inline ExprPtr lt(ExprPtr a, ExprPtr b) {
  return bin(BinOpKind::Lt, std::move(a), std::move(b));
}
[[nodiscard]] inline ExprPtr ge(ExprPtr a, ExprPtr b) {
  return bin(BinOpKind::Ge, std::move(a), std::move(b));
}
[[nodiscard]] inline ExprPtr eq(ExprPtr a, ExprPtr b) {
  return bin(BinOpKind::Eq, std::move(a), std::move(b));
}
[[nodiscard]] inline ExprPtr un(UnOpKind op, ExprPtr a) {
  return std::make_unique<UnOp>(op, std::move(a));
}
[[nodiscard]] inline ExprPtr neg(ExprPtr a) {
  return un(UnOpKind::Neg, std::move(a));
}
[[nodiscard]] inline ExprPtr sqrtE(ExprPtr a) {
  return un(UnOpKind::Sqrt, std::move(a));
}
[[nodiscard]] inline ExprPtr call(std::string callee,
                                  std::vector<ExprPtr> args) {
  return std::make_unique<Call>(std::move(callee), std::move(args));
}
[[nodiscard]] inline ExprPtr select(ExprPtr c, ExprPtr a, ExprPtr b) {
  return std::make_unique<Select>(std::move(c), std::move(a), std::move(b));
}

[[nodiscard]] inline StmtPtr assign(std::unique_ptr<VarRef> lhs, ExprPtr rhs) {
  return std::make_unique<Assign>(std::move(lhs), std::move(rhs));
}

[[nodiscard]] inline std::unique_ptr<Block> block() {
  return std::make_unique<Block>();
}

[[nodiscard]] inline std::unique_ptr<Block> block(std::vector<StmtPtr> stmts) {
  return std::make_unique<Block>(std::move(stmts));
}

[[nodiscard]] inline StmtPtr forLoop(std::string v, std::int64_t lo,
                                     std::int64_t hi,
                                     std::unique_ptr<Block> body,
                                     std::int64_t step = 1) {
  return std::make_unique<For>(std::move(v), lo, hi, std::move(body), step);
}

[[nodiscard]] inline StmtPtr ifStmt(ExprPtr cond, std::unique_ptr<Block> thenB,
                                    std::unique_ptr<Block> elseB = nullptr) {
  if (!elseB) elseB = block();
  return std::make_unique<If>(std::move(cond), std::move(thenB),
                              std::move(elseB));
}

}  // namespace argo::ir
