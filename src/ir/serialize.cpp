#include "ir/serialize.h"

#include <utility>

namespace argo::ir {
namespace {

using support::ByteReader;
using support::ByteWriter;

// --- encoding -----------------------------------------------------------

void writeType(const Type& t, ByteWriter& w) {
  w.u64(static_cast<std::uint64_t>(t.kind()));
  w.u64(t.dims().size());
  for (int d : t.dims()) w.i64(d);
}

void writeExpr(const Expr& e, ByteWriter& w);

void writeExprList(const std::vector<ExprPtr>& list, ByteWriter& w) {
  w.u64(list.size());
  for (const auto& e : list) writeExpr(*e, w);
}

void writeExpr(const Expr& e, ByteWriter& w) {
  w.u64(static_cast<std::uint64_t>(e.kind()));
  switch (e.kind()) {
    case ExprKind::IntLit:
      w.i64(cast<IntLit>(e).value());
      return;
    case ExprKind::FloatLit:
      w.f64(cast<FloatLit>(e).value());
      return;
    case ExprKind::BoolLit:
      w.boolean(cast<BoolLit>(e).value());
      return;
    case ExprKind::VarRef: {
      const auto& v = cast<VarRef>(e);
      w.str(v.name());
      writeExprList(v.indices(), w);
      return;
    }
    case ExprKind::BinOp: {
      const auto& b = cast<BinOp>(e);
      w.u64(static_cast<std::uint64_t>(b.op()));
      writeExpr(b.lhs(), w);
      writeExpr(b.rhs(), w);
      return;
    }
    case ExprKind::UnOp: {
      const auto& u = cast<UnOp>(e);
      w.u64(static_cast<std::uint64_t>(u.op()));
      writeExpr(u.operand(), w);
      return;
    }
    case ExprKind::Call: {
      const auto& c = cast<Call>(e);
      w.str(c.callee());
      writeExprList(c.args(), w);
      return;
    }
    case ExprKind::Select: {
      const auto& s = cast<Select>(e);
      writeExpr(s.cond(), w);
      writeExpr(s.onTrue(), w);
      writeExpr(s.onFalse(), w);
      return;
    }
  }
}

void writeStmt(const Stmt& s, ByteWriter& w);

void writeBlock(const Block& b, ByteWriter& w) {
  w.str(b.label);
  w.u64(b.size());
  for (const auto& s : b.stmts()) writeStmt(*s, w);
}

void writeStmt(const Stmt& s, ByteWriter& w) {
  w.u64(static_cast<std::uint64_t>(s.kind()));
  switch (s.kind()) {
    case StmtKind::Block:
      writeBlock(cast<Block>(s), w);
      return;
    case StmtKind::Assign: {
      const auto& a = cast<Assign>(s);
      w.str(a.label);
      writeExpr(a.lhs(), w);
      writeExpr(a.rhs(), w);
      return;
    }
    case StmtKind::For: {
      const auto& f = cast<For>(s);
      w.str(f.label);
      w.str(f.var());
      w.i64(f.lower());
      w.i64(f.upper());
      w.i64(f.step());
      writeBlock(f.body(), w);
      return;
    }
    case StmtKind::If: {
      const auto& i = cast<If>(s);
      w.str(i.label);
      writeExpr(i.cond(), w);
      writeBlock(i.thenBody(), w);
      writeBlock(i.elseBody(), w);
      return;
    }
  }
}

// --- decoding -----------------------------------------------------------

/// Reads an enum-as-u64 and range-checks it against [0, limit]. On
/// violation the reader is invalidated and `limit` returned (callers stop
/// on !r.ok() before the value matters).
template <typename E>
[[nodiscard]] E readEnum(ByteReader& r, E limit) {
  const std::uint64_t raw = r.u64();
  if (!r.ok() || raw > static_cast<std::uint64_t>(limit)) {
    r.invalidate();
    return limit;
  }
  return static_cast<E>(raw);
}

[[nodiscard]] Type readType(ByteReader& r) {
  const ScalarKind kind = readEnum(r, ScalarKind::Float64);
  const std::size_t rank = r.count();
  std::vector<int> dims;
  dims.reserve(rank);
  for (std::size_t i = 0; i < rank && r.ok(); ++i) {
    const std::int64_t d = r.i64();
    if (d < 1 || d > INT32_MAX) {
      r.invalidate();
      break;
    }
    dims.push_back(static_cast<int>(d));
  }
  if (!r.ok()) return Type();
  return dims.empty() ? Type::scalar(kind)
                      : Type::array(kind, std::move(dims));
}

[[nodiscard]] ExprPtr readExpr(ByteReader& r);

[[nodiscard]] std::vector<ExprPtr> readExprList(ByteReader& r) {
  const std::size_t n = r.count();
  std::vector<ExprPtr> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ExprPtr e = readExpr(r);
    if (!e) return {};
    out.push_back(std::move(e));
  }
  return out;
}

[[nodiscard]] std::unique_ptr<VarRef> readVarRef(ByteReader& r) {
  std::string name = r.str();
  std::vector<ExprPtr> indices = readExprList(r);
  if (!r.ok()) return nullptr;
  return std::make_unique<VarRef>(std::move(name), std::move(indices));
}

[[nodiscard]] ExprPtr readExpr(ByteReader& r) {
  const ExprKind kind = readEnum(r, ExprKind::Select);
  if (!r.ok()) return nullptr;
  switch (kind) {
    case ExprKind::IntLit: {
      const std::int64_t v = r.i64();
      if (!r.ok()) return nullptr;
      return std::make_unique<IntLit>(v);
    }
    case ExprKind::FloatLit: {
      const double v = r.f64();
      if (!r.ok()) return nullptr;
      return std::make_unique<FloatLit>(v);
    }
    case ExprKind::BoolLit: {
      const bool v = r.boolean();
      if (!r.ok()) return nullptr;
      return std::make_unique<BoolLit>(v);
    }
    case ExprKind::VarRef:
      return readVarRef(r);
    case ExprKind::BinOp: {
      const BinOpKind op = readEnum(r, BinOpKind::Or);
      ExprPtr lhs = readExpr(r);
      ExprPtr rhs = lhs ? readExpr(r) : nullptr;
      if (!rhs || !r.ok()) return nullptr;
      return std::make_unique<BinOp>(op, std::move(lhs), std::move(rhs));
    }
    case ExprKind::UnOp: {
      const UnOpKind op = readEnum(r, UnOpKind::ToInt);
      ExprPtr operand = readExpr(r);
      if (!operand || !r.ok()) return nullptr;
      return std::make_unique<UnOp>(op, std::move(operand));
    }
    case ExprKind::Call: {
      std::string callee = r.str();
      std::vector<ExprPtr> args = readExprList(r);
      if (!r.ok()) return nullptr;
      return std::make_unique<Call>(std::move(callee), std::move(args));
    }
    case ExprKind::Select: {
      ExprPtr cond = readExpr(r);
      ExprPtr onTrue = cond ? readExpr(r) : nullptr;
      ExprPtr onFalse = onTrue ? readExpr(r) : nullptr;
      if (!onFalse || !r.ok()) return nullptr;
      return std::make_unique<Select>(std::move(cond), std::move(onTrue),
                                      std::move(onFalse));
    }
  }
  return nullptr;
}

[[nodiscard]] StmtPtr readStmt(ByteReader& r);

[[nodiscard]] std::unique_ptr<Block> readBlock(ByteReader& r) {
  std::string label = r.str();
  const std::size_t n = r.count();
  auto block = std::make_unique<Block>();
  block->label = std::move(label);
  for (std::size_t i = 0; i < n; ++i) {
    StmtPtr s = readStmt(r);
    if (!s) return nullptr;
    block->append(std::move(s));
  }
  if (!r.ok()) return nullptr;
  return block;
}

[[nodiscard]] StmtPtr readStmt(ByteReader& r) {
  const StmtKind kind = readEnum(r, StmtKind::Block);
  if (!r.ok()) return nullptr;
  switch (kind) {
    case StmtKind::Block:
      return readBlock(r);
    case StmtKind::Assign: {
      std::string label = r.str();
      // The lhs was written through writeExpr, kind tag included; it must
      // decode back specifically to a VarRef.
      const ExprKind lhsKind = readEnum(r, ExprKind::Select);
      if (!r.ok() || lhsKind != ExprKind::VarRef) {
        r.invalidate();
        return nullptr;
      }
      std::unique_ptr<VarRef> lhs = readVarRef(r);
      ExprPtr rhs = lhs ? readExpr(r) : nullptr;
      if (!rhs || !r.ok()) return nullptr;
      auto stmt = std::make_unique<Assign>(std::move(lhs), std::move(rhs));
      stmt->label = std::move(label);
      return stmt;
    }
    case StmtKind::For: {
      std::string label = r.str();
      std::string var = r.str();
      const std::int64_t lower = r.i64();
      const std::int64_t upper = r.i64();
      const std::int64_t step = r.i64();
      std::unique_ptr<Block> body = r.ok() ? readBlock(r) : nullptr;
      if (!body || !r.ok()) return nullptr;
      auto stmt = std::make_unique<For>(std::move(var), lower, upper,
                                        std::move(body), step);
      stmt->label = std::move(label);
      return stmt;
    }
    case StmtKind::If: {
      std::string label = r.str();
      ExprPtr cond = readExpr(r);
      std::unique_ptr<Block> thenBody = cond ? readBlock(r) : nullptr;
      std::unique_ptr<Block> elseBody = thenBody ? readBlock(r) : nullptr;
      if (!elseBody || !r.ok()) return nullptr;
      auto stmt = std::make_unique<If>(std::move(cond), std::move(thenBody),
                                       std::move(elseBody));
      stmt->label = std::move(label);
      return stmt;
    }
  }
  return nullptr;
}

}  // namespace

void serializeFunction(const Function& fn, ByteWriter& w) {
  w.str(fn.name());
  w.u64(fn.decls().size());
  for (const VarDecl& d : fn.decls()) {
    w.str(d.name);
    writeType(d.type, w);
    w.u64(static_cast<std::uint64_t>(d.role));
    w.u64(static_cast<std::uint64_t>(d.storage));
  }
  writeBlock(fn.body(), w);
}

void serializeStmt(const Stmt& s, ByteWriter& w) { writeStmt(s, w); }

StmtPtr deserializeStmt(ByteReader& r) { return readStmt(r); }

std::unique_ptr<Function> deserializeFunction(ByteReader& r) {
  std::string name = r.str();
  const std::size_t declCount = r.count();
  if (!r.ok()) return nullptr;
  auto fn = std::make_unique<Function>(std::move(name));
  for (std::size_t i = 0; i < declCount; ++i) {
    VarDecl d;
    d.name = r.str();
    d.type = readType(r);
    d.role = readEnum(r, VarRole::Const);
    d.storage = readEnum(r, Storage::Shared);
    if (!r.ok() || fn->find(d.name) != nullptr) {
      r.invalidate();
      return nullptr;
    }
    fn->declare(std::move(d));
  }
  std::unique_ptr<Block> body = readBlock(r);
  if (!body || !r.ok()) return nullptr;
  fn->setBody(std::move(body));
  return fn;
}

}  // namespace argo::ir
