// Expression nodes of the ARGO IR.
//
// Expressions are side-effect free trees owned through std::unique_ptr.
// Deep copies go through clone(); pattern dispatch uses kind() plus the
// isa<>/cast<> helpers at the bottom of this header.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/type.h"

namespace argo::ir {

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Discriminator for Expr subclasses.
enum class ExprKind : std::uint8_t {
  IntLit,
  FloatLit,
  BoolLit,
  VarRef,
  BinOp,
  UnOp,
  Call,
  Select,
};

/// Binary operators. Comparison/logical operators yield Bool.
enum class BinOpKind : std::uint8_t {
  Add, Sub, Mul, Div, Mod, Min, Max,
  Lt, Le, Gt, Ge, Eq, Ne,
  And, Or,
};

/// Unary operators / one-argument intrinsics.
enum class UnOpKind : std::uint8_t {
  Neg, Not, Abs, Sqrt, Exp, Log, Sin, Cos, Tan, Atan, Floor, ToFloat, ToInt,
};

[[nodiscard]] const char* binOpName(BinOpKind op) noexcept;
[[nodiscard]] const char* unOpName(UnOpKind op) noexcept;
[[nodiscard]] bool isComparison(BinOpKind op) noexcept;
[[nodiscard]] bool isLogical(BinOpKind op) noexcept;

/// Base class of all expressions.
class Expr {
 public:
  virtual ~Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  [[nodiscard]] ExprKind kind() const noexcept { return kind_; }
  [[nodiscard]] virtual ExprPtr clone() const = 0;

 protected:
  explicit Expr(ExprKind kind) noexcept : kind_(kind) {}

 private:
  ExprKind kind_;
};

/// 64-bit integer literal (also used for i32 values; range-checked on use).
class IntLit final : public Expr {
 public:
  static constexpr ExprKind Kind = ExprKind::IntLit;
  explicit IntLit(std::int64_t value) noexcept
      : Expr(Kind), value_(value) {}
  [[nodiscard]] std::int64_t value() const noexcept { return value_; }
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<IntLit>(value_);
  }

 private:
  std::int64_t value_;
};

/// Floating point literal.
class FloatLit final : public Expr {
 public:
  static constexpr ExprKind Kind = ExprKind::FloatLit;
  explicit FloatLit(double value) noexcept : Expr(Kind), value_(value) {}
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<FloatLit>(value_);
  }

 private:
  double value_;
};

/// Boolean literal.
class BoolLit final : public Expr {
 public:
  static constexpr ExprKind Kind = ExprKind::BoolLit;
  explicit BoolLit(bool value) noexcept : Expr(Kind), value_(value) {}
  [[nodiscard]] bool value() const noexcept { return value_; }
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<BoolLit>(value_);
  }

 private:
  bool value_;
};

/// Reference to a scalar variable or an element of an array variable.
///
/// `indices()` is empty for whole-scalar references. Whole-array references
/// never appear inside expressions; array traffic is expressed with loops.
class VarRef final : public Expr {
 public:
  static constexpr ExprKind Kind = ExprKind::VarRef;
  explicit VarRef(std::string name, std::vector<ExprPtr> indices = {})
      : Expr(Kind), name_(std::move(name)), indices_(std::move(indices)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void setName(std::string name) { name_ = std::move(name); }
  [[nodiscard]] const std::vector<ExprPtr>& indices() const noexcept {
    return indices_;
  }
  [[nodiscard]] std::vector<ExprPtr>& indices() noexcept { return indices_; }
  [[nodiscard]] ExprPtr clone() const override;

 private:
  std::string name_;
  std::vector<ExprPtr> indices_;
};

/// Binary operation.
class BinOp final : public Expr {
 public:
  static constexpr ExprKind Kind = ExprKind::BinOp;
  BinOp(BinOpKind op, ExprPtr lhs, ExprPtr rhs)
      : Expr(Kind), op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  [[nodiscard]] BinOpKind op() const noexcept { return op_; }
  [[nodiscard]] const Expr& lhs() const noexcept { return *lhs_; }
  [[nodiscard]] const Expr& rhs() const noexcept { return *rhs_; }
  [[nodiscard]] ExprPtr takeLhs() noexcept { return std::move(lhs_); }
  [[nodiscard]] ExprPtr takeRhs() noexcept { return std::move(rhs_); }
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<BinOp>(op_, lhs_->clone(), rhs_->clone());
  }

 private:
  BinOpKind op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// Unary operation or single-argument math intrinsic.
class UnOp final : public Expr {
 public:
  static constexpr ExprKind Kind = ExprKind::UnOp;
  UnOp(UnOpKind op, ExprPtr operand)
      : Expr(Kind), op_(op), operand_(std::move(operand)) {}

  [[nodiscard]] UnOpKind op() const noexcept { return op_; }
  [[nodiscard]] const Expr& operand() const noexcept { return *operand_; }
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<UnOp>(op_, operand_->clone());
  }

 private:
  UnOpKind op_;
  ExprPtr operand_;
};

/// Multi-argument math intrinsic (e.g. atan2, pow, hypot).
class Call final : public Expr {
 public:
  static constexpr ExprKind Kind = ExprKind::Call;
  Call(std::string callee, std::vector<ExprPtr> args)
      : Expr(Kind), callee_(std::move(callee)), args_(std::move(args)) {}

  [[nodiscard]] const std::string& callee() const noexcept { return callee_; }
  [[nodiscard]] const std::vector<ExprPtr>& args() const noexcept {
    return args_;
  }
  [[nodiscard]] ExprPtr clone() const override;

 private:
  std::string callee_;
  std::vector<ExprPtr> args_;
};

/// Ternary select: cond ? onTrue : onFalse. Both arms are evaluated for
/// WCET purposes as max(arms); the evaluator short-circuits.
class Select final : public Expr {
 public:
  static constexpr ExprKind Kind = ExprKind::Select;
  Select(ExprPtr cond, ExprPtr onTrue, ExprPtr onFalse)
      : Expr(Kind),
        cond_(std::move(cond)),
        onTrue_(std::move(onTrue)),
        onFalse_(std::move(onFalse)) {}

  [[nodiscard]] const Expr& cond() const noexcept { return *cond_; }
  [[nodiscard]] const Expr& onTrue() const noexcept { return *onTrue_; }
  [[nodiscard]] const Expr& onFalse() const noexcept { return *onFalse_; }
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<Select>(cond_->clone(), onTrue_->clone(),
                                    onFalse_->clone());
  }

 private:
  ExprPtr cond_;
  ExprPtr onTrue_;
  ExprPtr onFalse_;
};

/// Checked downcast helpers.
template <typename T>
[[nodiscard]] bool isa(const Expr& e) noexcept {
  return e.kind() == T::Kind;
}

template <typename T>
[[nodiscard]] const T& cast(const Expr& e) {
  return static_cast<const T&>(e);
}

template <typename T>
[[nodiscard]] const T* dynCast(const Expr& e) noexcept {
  return isa<T>(e) ? &static_cast<const T&>(e) : nullptr;
}

}  // namespace argo::ir
