#include "ir/rewrite.h"

namespace argo::ir {

namespace {

void renameInExpr(Expr& expr, const std::map<std::string, std::string>& renames);

void renameChildren(Expr& expr,
                    const std::map<std::string, std::string>& renames) {
  switch (expr.kind()) {
    case ExprKind::IntLit:
    case ExprKind::FloatLit:
    case ExprKind::BoolLit:
      break;
    case ExprKind::VarRef: {
      auto& ref = static_cast<VarRef&>(expr);
      for (ExprPtr& idx : ref.indices()) renameInExpr(*idx, renames);
      break;
    }
    case ExprKind::BinOp: {
      auto& bin = static_cast<BinOp&>(expr);
      renameInExpr(const_cast<Expr&>(bin.lhs()), renames);
      renameInExpr(const_cast<Expr&>(bin.rhs()), renames);
      break;
    }
    case ExprKind::UnOp:
      renameInExpr(const_cast<Expr&>(static_cast<UnOp&>(expr).operand()),
                   renames);
      break;
    case ExprKind::Call: {
      auto& call = static_cast<Call&>(expr);
      for (const ExprPtr& a : call.args()) renameInExpr(*a, renames);
      break;
    }
    case ExprKind::Select: {
      auto& sel = static_cast<Select&>(expr);
      renameInExpr(const_cast<Expr&>(sel.cond()), renames);
      renameInExpr(const_cast<Expr&>(sel.onTrue()), renames);
      renameInExpr(const_cast<Expr&>(sel.onFalse()), renames);
      break;
    }
  }
}

void renameInExpr(Expr& expr, const std::map<std::string, std::string>& renames) {
  if (expr.kind() == ExprKind::VarRef) {
    auto& ref = static_cast<VarRef&>(expr);
    auto it = renames.find(ref.name());
    if (it != renames.end()) ref.setName(it->second);
  }
  renameChildren(expr, renames);
}

}  // namespace

void renameVars(Expr& expr, const std::map<std::string, std::string>& renames) {
  renameInExpr(expr, renames);
}

void renameVars(Stmt& stmt, const std::map<std::string, std::string>& renames) {
  switch (stmt.kind()) {
    case StmtKind::Assign: {
      auto& assign = cast<Assign>(stmt);
      renameInExpr(assign.lhs(), renames);
      renameInExpr(const_cast<Expr&>(assign.rhs()), renames);
      break;
    }
    case StmtKind::For: {
      auto& loop = cast<For>(stmt);
      auto it = renames.find(loop.var());
      if (it != renames.end()) loop.setVar(it->second);
      for (const StmtPtr& s : loop.body().stmts()) renameVars(*s, renames);
      break;
    }
    case StmtKind::If: {
      auto& branch = cast<If>(stmt);
      renameInExpr(const_cast<Expr&>(branch.cond()), renames);
      for (const StmtPtr& s : branch.thenBody().stmts()) {
        renameVars(*s, renames);
      }
      for (const StmtPtr& s : branch.elseBody().stmts()) {
        renameVars(*s, renames);
      }
      break;
    }
    case StmtKind::Block:
      for (const StmtPtr& s : cast<Block>(stmt).stmts()) {
        renameVars(*s, renames);
      }
      break;
  }
}

namespace {

ExprPtr substituteInExpr(ExprPtr expr, const std::string& var,
                         const Expr& replacement) {
  switch (expr->kind()) {
    case ExprKind::VarRef: {
      auto& ref = static_cast<VarRef&>(*expr);
      if (ref.name() == var && ref.indices().empty()) {
        return replacement.clone();
      }
      for (ExprPtr& idx : ref.indices()) {
        idx = substituteInExpr(std::move(idx), var, replacement);
      }
      return expr;
    }
    case ExprKind::BinOp: {
      auto& bin = static_cast<BinOp&>(*expr);
      ExprPtr lhs = substituteInExpr(bin.takeLhs(), var, replacement);
      ExprPtr rhs = substituteInExpr(bin.takeRhs(), var, replacement);
      return std::make_unique<BinOp>(bin.op(), std::move(lhs), std::move(rhs));
    }
    case ExprKind::UnOp: {
      auto& un = static_cast<UnOp&>(*expr);
      ExprPtr operand =
          substituteInExpr(un.operand().clone(), var, replacement);
      return std::make_unique<UnOp>(un.op(), std::move(operand));
    }
    case ExprKind::Call: {
      auto& call = static_cast<Call&>(*expr);
      std::vector<ExprPtr> args;
      args.reserve(call.args().size());
      for (const ExprPtr& a : call.args()) {
        args.push_back(substituteInExpr(a->clone(), var, replacement));
      }
      return std::make_unique<Call>(call.callee(), std::move(args));
    }
    case ExprKind::Select: {
      auto& sel = static_cast<Select&>(*expr);
      return std::make_unique<Select>(
          substituteInExpr(sel.cond().clone(), var, replacement),
          substituteInExpr(sel.onTrue().clone(), var, replacement),
          substituteInExpr(sel.onFalse().clone(), var, replacement));
    }
    default:
      return expr;
  }
}

}  // namespace

ExprPtr substituteVar(ExprPtr expr, const std::string& var,
                      const Expr& replacement) {
  return substituteInExpr(std::move(expr), var, replacement);
}

void substituteVar(Stmt& stmt, const std::string& var,
                   const Expr& replacement) {
  switch (stmt.kind()) {
    case StmtKind::Assign: {
      auto& assign = cast<Assign>(stmt);
      for (ExprPtr& idx : assign.lhs().indices()) {
        idx = substituteInExpr(std::move(idx), var, replacement);
      }
      assign.setRhs(substituteInExpr(assign.takeRhs(), var, replacement));
      break;
    }
    case StmtKind::For: {
      auto& loop = cast<For>(stmt);
      if (loop.var() == var) break;  // shadowed
      for (const StmtPtr& s : loop.body().stmts()) {
        substituteVar(*s, var, replacement);
      }
      break;
    }
    case StmtKind::If: {
      auto& branch = cast<If>(stmt);
      branch.setCond(
          substituteInExpr(branch.takeCond(), var, replacement));
      for (const StmtPtr& s : branch.thenBody().stmts()) {
        substituteVar(*s, var, replacement);
      }
      for (const StmtPtr& s : branch.elseBody().stmts()) {
        substituteVar(*s, var, replacement);
      }
      break;
    }
    case StmtKind::Block:
      for (const StmtPtr& s : cast<Block>(stmt).stmts()) {
        substituteVar(*s, var, replacement);
      }
      break;
  }
}

}  // namespace argo::ir
