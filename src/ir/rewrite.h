// In-place IR rewriting utilities: variable renaming and substitution.
//
// Used by the Scilab block inliner (port/local renaming into the diagram
// function) and by the loop transformations (substituting a constant for a
// loop variable during unrolling / index-set splitting).
#pragma once

#include <map>
#include <string>

#include "ir/stmt.h"

namespace argo::ir {

/// Renames every variable reference (and loop variable) occurring in
/// `expr`/`stmt` according to `renames`. Names absent from the map are left
/// unchanged.
void renameVars(Expr& expr, const std::map<std::string, std::string>& renames);
void renameVars(Stmt& stmt, const std::map<std::string, std::string>& renames);

/// Replaces every scalar reference to `var` in `expr` with a clone of
/// `replacement`. Returns the possibly-new root (the root itself may be the
/// reference being replaced).
[[nodiscard]] ExprPtr substituteVar(ExprPtr expr, const std::string& var,
                                    const Expr& replacement);

/// Replaces scalar references to `var` with `replacement` throughout a
/// statement tree (including array index expressions and loop bounds are
/// unaffected — bounds are constants by construction).
void substituteVar(Stmt& stmt, const std::string& var, const Expr& replacement);

}  // namespace argo::ir
