#include "ir/printer.h"

#include <sstream>

namespace argo::ir {

namespace {

void printExpr(std::ostream& os, const Expr& expr);

void printArgs(std::ostream& os, const std::vector<ExprPtr>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) os << ", ";
    printExpr(os, *args[i]);
  }
}

void printExpr(std::ostream& os, const Expr& expr) {
  switch (expr.kind()) {
    case ExprKind::IntLit:
      os << cast<IntLit>(expr).value();
      break;
    case ExprKind::FloatLit:
      os << cast<FloatLit>(expr).value();
      break;
    case ExprKind::BoolLit:
      os << (cast<BoolLit>(expr).value() ? "true" : "false");
      break;
    case ExprKind::VarRef: {
      const auto& ref = cast<VarRef>(expr);
      os << ref.name();
      for (const ExprPtr& idx : ref.indices()) {
        os << '[';
        printExpr(os, *idx);
        os << ']';
      }
      break;
    }
    case ExprKind::BinOp: {
      const auto& bin = cast<BinOp>(expr);
      if (bin.op() == BinOpKind::Min || bin.op() == BinOpKind::Max) {
        os << binOpName(bin.op()) << '(';
        printExpr(os, bin.lhs());
        os << ", ";
        printExpr(os, bin.rhs());
        os << ')';
      } else {
        os << '(';
        printExpr(os, bin.lhs());
        os << ' ' << binOpName(bin.op()) << ' ';
        printExpr(os, bin.rhs());
        os << ')';
      }
      break;
    }
    case ExprKind::UnOp: {
      const auto& un = cast<UnOp>(expr);
      if (un.op() == UnOpKind::Neg || un.op() == UnOpKind::Not) {
        os << unOpName(un.op()) << '(';
      } else {
        os << unOpName(un.op()) << '(';
      }
      printExpr(os, un.operand());
      os << ')';
      break;
    }
    case ExprKind::Call: {
      const auto& c = cast<Call>(expr);
      os << c.callee() << '(';
      printArgs(os, c.args());
      os << ')';
      break;
    }
    case ExprKind::Select: {
      const auto& sel = cast<Select>(expr);
      os << '(';
      printExpr(os, sel.cond());
      os << " ? ";
      printExpr(os, sel.onTrue());
      os << " : ";
      printExpr(os, sel.onFalse());
      os << ')';
      break;
    }
  }
}

void printStmt(std::ostream& os, const Stmt& stmt, int indent);

void printBlockBody(std::ostream& os, const Block& block, int indent) {
  for (const StmtPtr& s : block.stmts()) printStmt(os, *s, indent);
}

void printStmt(std::ostream& os, const Stmt& stmt, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  if (!stmt.label.empty()) os << pad << "// " << stmt.label << '\n';
  switch (stmt.kind()) {
    case StmtKind::Assign: {
      const auto& a = cast<Assign>(stmt);
      os << pad;
      printExpr(os, a.lhs());
      os << " = ";
      printExpr(os, a.rhs());
      os << ";\n";
      break;
    }
    case StmtKind::For: {
      const auto& loop = cast<For>(stmt);
      os << pad << "for (" << loop.var() << " = " << loop.lower() << "; "
         << loop.var() << " < " << loop.upper() << "; " << loop.var();
      if (loop.step() == 1) {
        os << "++";
      } else {
        os << " += " << loop.step();
      }
      os << ") {\n";
      printBlockBody(os, loop.body(), indent + 1);
      os << pad << "}\n";
      break;
    }
    case StmtKind::If: {
      const auto& branch = cast<If>(stmt);
      os << pad << "if (";
      printExpr(os, branch.cond());
      os << ") {\n";
      printBlockBody(os, branch.thenBody(), indent + 1);
      if (!branch.elseBody().empty()) {
        os << pad << "} else {\n";
        printBlockBody(os, branch.elseBody(), indent + 1);
      }
      os << pad << "}\n";
      break;
    }
    case StmtKind::Block: {
      os << pad << "{\n";
      printBlockBody(os, cast<Block>(stmt), indent + 1);
      os << pad << "}\n";
      break;
    }
  }
}

}  // namespace

std::string toString(const Expr& expr) {
  std::ostringstream os;
  printExpr(os, expr);
  return os.str();
}

std::string toString(const Stmt& stmt, int indent) {
  std::ostringstream os;
  printStmt(os, stmt, indent);
  return os.str();
}

std::string toString(const Function& fn) {
  std::ostringstream os;
  os << "function " << fn.name() << " {\n";
  for (const VarDecl& d : fn.decls()) {
    os << "  " << varRoleName(d.role) << ' ' << d.type.str() << ' ' << d.name
       << "  // " << storageName(d.storage) << '\n';
  }
  os << '\n';
  printBlockBody(os, fn.body(), 1);
  os << "}\n";
  return os.str();
}

}  // namespace argo::ir
