#include "ir/dominators.h"

#include <algorithm>
#include <string>

#include "support/diagnostics.h"

namespace argo::ir {

using support::ToolchainError;

DominatorTree::DominatorTree(const Cfg& cfg) {
  const std::vector<int> topo = cfg.topoOrder();  // reverse postorder on DAGs
  const std::size_t n = cfg.nodes().size();
  idom_.assign(n, -1);

  std::vector<int> orderIndex(n, -1);
  for (std::size_t k = 0; k < topo.size(); ++k) {
    orderIndex[static_cast<std::size_t>(topo[k])] = static_cast<int>(k);
  }

  auto intersect = [&](int a, int b) {
    while (a != b) {
      while (orderIndex[static_cast<std::size_t>(a)] >
             orderIndex[static_cast<std::size_t>(b)]) {
        a = idom_[static_cast<std::size_t>(a)];
      }
      while (orderIndex[static_cast<std::size_t>(b)] >
             orderIndex[static_cast<std::size_t>(a)]) {
        b = idom_[static_cast<std::size_t>(b)];
      }
    }
    return a;
  };

  idom_[static_cast<std::size_t>(cfg.entry())] = cfg.entry();
  bool changed = true;
  while (changed) {
    changed = false;
    for (int node : topo) {
      if (node == cfg.entry()) continue;
      int newIdom = -1;
      for (int pred : cfg.node(node).preds) {
        if (idom_[static_cast<std::size_t>(pred)] < 0) continue;
        newIdom = newIdom < 0 ? pred : intersect(pred, newIdom);
      }
      if (newIdom >= 0 && idom_[static_cast<std::size_t>(node)] != newIdom) {
        idom_[static_cast<std::size_t>(node)] = newIdom;
        changed = true;
      }
    }
  }
  // Entry's idom is conventionally -1 for clients.
  idom_[static_cast<std::size_t>(cfg.entry())] = -1;
}

bool DominatorTree::dominates(int a, int b) const {
  int cursor = b;
  while (cursor >= 0) {
    if (cursor == a) return true;
    cursor = idom_[static_cast<std::size_t>(cursor)];
  }
  return false;
}

int DominatorTree::depth(int node) const {
  int depth = 0;
  int cursor = idom_.at(static_cast<std::size_t>(node));
  while (cursor >= 0) {
    ++depth;
    cursor = idom_[static_cast<std::size_t>(cursor)];
  }
  return depth;
}

std::vector<std::string> checkSeseDiscipline(const Cfg& cfg) {
  std::vector<std::string> problems;
  const DominatorTree dom(cfg);
  for (std::size_t id = 0; id < cfg.nodes().size(); ++id) {
    const CfgNode& node = cfg.nodes()[id];
    const int nodeId = static_cast<int>(id);
    if (nodeId != cfg.entry() && !dom.dominates(cfg.entry(), nodeId)) {
      problems.push_back("node " + std::to_string(id) +
                         " not dominated by entry");
    }
    if (node.kind == CfgNodeKind::Join) {
      // The join's immediate dominator must be the matching branch.
      const int idom = dom.idom(nodeId);
      if (idom < 0 || cfg.node(idom).kind != CfgNodeKind::Branch) {
        problems.push_back("join node " + std::to_string(id) +
                           " not immediately dominated by a branch");
      }
    }
    // Recurse into nested loop bodies.
    if (node.body) {
      for (std::string& p : checkSeseDiscipline(*node.body)) {
        problems.push_back("loop body: " + std::move(p));
      }
    }
  }
  return problems;
}

}  // namespace argo::ir
