#include "ir/affine.h"

namespace argo::ir {

std::int64_t AffineForm::coeff(const std::string& var) const noexcept {
  auto it = coeffs.find(var);
  return it == coeffs.end() ? 0 : it->second;
}

AffineForm AffineForm::operator+(const AffineForm& other) const {
  if (!affine || !other.affine) return nonAffine();
  AffineForm out = *this;
  out.constant += other.constant;
  for (const auto& [var, c] : other.coeffs) {
    const std::int64_t sum = out.coeff(var) + c;
    if (sum == 0) {
      out.coeffs.erase(var);
    } else {
      out.coeffs[var] = sum;
    }
  }
  return out;
}

AffineForm AffineForm::operator-(const AffineForm& other) const {
  return *this + other.scaled(-1);
}

AffineForm AffineForm::scaled(std::int64_t factor) const {
  if (!affine) return nonAffine();
  if (factor == 0) return constantForm(0);
  AffineForm out = *this;
  out.constant *= factor;
  for (auto& [var, c] : out.coeffs) c *= factor;
  return out;
}

AffineForm analyzeAffine(const Expr& expr,
                         const std::map<std::string, int>& loopVars) {
  switch (expr.kind()) {
    case ExprKind::IntLit:
      return AffineForm::constantForm(cast<IntLit>(expr).value());
    case ExprKind::VarRef: {
      const auto& ref = cast<VarRef>(expr);
      if (!ref.indices().empty()) return AffineForm::nonAffine();
      if (!loopVars.contains(ref.name())) return AffineForm::nonAffine();
      AffineForm f;
      f.affine = true;
      f.coeffs[ref.name()] = 1;
      return f;
    }
    case ExprKind::UnOp: {
      const auto& un = cast<UnOp>(expr);
      if (un.op() == UnOpKind::Neg) {
        return analyzeAffine(un.operand(), loopVars).scaled(-1);
      }
      if (un.op() == UnOpKind::ToInt) {
        return analyzeAffine(un.operand(), loopVars);
      }
      return AffineForm::nonAffine();
    }
    case ExprKind::BinOp: {
      const auto& bin = cast<BinOp>(expr);
      const AffineForm a = analyzeAffine(bin.lhs(), loopVars);
      const AffineForm b = analyzeAffine(bin.rhs(), loopVars);
      switch (bin.op()) {
        case BinOpKind::Add: return a + b;
        case BinOpKind::Sub: return a - b;
        case BinOpKind::Mul:
          if (a.isConstant()) return b.scaled(a.constant);
          if (b.isConstant()) return a.scaled(b.constant);
          return AffineForm::nonAffine();
        case BinOpKind::Div:
          // i / c is affine only for exact constant division we cannot
          // prove here; stay conservative.
          return AffineForm::nonAffine();
        default:
          return AffineForm::nonAffine();
      }
    }
    default:
      return AffineForm::nonAffine();
  }
}

}  // namespace argo::ir
