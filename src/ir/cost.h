// Operation classification shared by the WCET timing model, the reference
// interpreter, and the simulator.
//
// Every IR operation maps to one OpClass; the ADL core model assigns a cycle
// cost to each class. Using one classification on both the analysis side
// (WCET) and the execution side (simulator) is what makes the safety claim
// "observed <= bound" checkable: both sides price the same events, the bound
// differs only by path/interference pessimism.
#pragma once

#include <array>
#include <cstdint>

#include "ir/expr.h"

namespace argo::ir {

/// Classes of priced operations.
enum class OpClass : std::uint8_t {
  IntAlu,     ///< Integer add/sub/logic, address arithmetic.
  IntMul,     ///< Integer multiply.
  IntDiv,     ///< Integer divide / modulo.
  FloatAdd,   ///< FP add/sub/compare.
  FloatMul,   ///< FP multiply.
  FloatDiv,   ///< FP divide / sqrt.
  MathFunc,   ///< Library math call (sin, exp, atan2, ...).
  Compare,    ///< Integer compare.
  Select,     ///< Conditional move.
  Branch,     ///< Taken/non-taken branch (if, loop exit test).
  LoopStep,   ///< Loop increment + back-edge.
};

inline constexpr int kOpClassCount = 11;

[[nodiscard]] const char* opClassName(OpClass op) noexcept;

/// Dense per-class counters.
class OpCounts {
 public:
  [[nodiscard]] std::int64_t& operator[](OpClass op) noexcept {
    return counts_[static_cast<std::size_t>(op)];
  }
  [[nodiscard]] std::int64_t operator[](OpClass op) const noexcept {
    return counts_[static_cast<std::size_t>(op)];
  }
  OpCounts& operator+=(const OpCounts& other) noexcept;
  /// Multiplies every counter, e.g. by a loop trip count.
  OpCounts& operator*=(std::int64_t factor) noexcept;
  /// Per-class maximum; used to merge if/else arms for worst-case counts.
  [[nodiscard]] static OpCounts max(const OpCounts& a,
                                    const OpCounts& b) noexcept;
  [[nodiscard]] std::int64_t total() const noexcept;

 private:
  std::array<std::int64_t, kOpClassCount> counts_{};
};

/// OpClass of a binary operator given operand "floatness".
[[nodiscard]] OpClass classifyBinOp(BinOpKind op, bool floatOperands) noexcept;

/// OpClass of a unary operator given operand "floatness".
[[nodiscard]] OpClass classifyUnOp(UnOpKind op, bool floatOperand) noexcept;

}  // namespace argo::ir
