#include "ir/evaluator.h"

#include <cmath>
#include <cstdlib>

#include "support/diagnostics.h"

namespace argo::ir {

using support::ToolchainError;

Value::Value(Type type) : type_(std::move(type)) {
  if (type_.kind() == ScalarKind::Float64) {
    f_.assign(static_cast<std::size_t>(type_.elementCount()), 0.0);
  } else {
    i_.assign(static_cast<std::size_t>(type_.elementCount()), 0);
  }
}

Value Value::scalarFloat(double v) {
  Value out(Type::float64());
  out.f_[0] = v;
  return out;
}

Value Value::scalarInt(std::int64_t v) {
  Value out(Type::int32());
  out.i_[0] = v;
  return out;
}

Value Value::scalarBool(bool v) {
  Value out(Type::boolean());
  out.i_[0] = v ? 1 : 0;
  return out;
}

Value Value::floats(Type type, std::vector<double> data) {
  Value out(std::move(type));
  if (static_cast<std::int64_t>(data.size()) != out.size()) {
    throw ToolchainError("Value::floats: size mismatch");
  }
  out.f_ = std::move(data);
  return out;
}

double Value::getFloat(std::int64_t flatIndex) const {
  if (isFloat()) return f_.at(static_cast<std::size_t>(flatIndex));
  return static_cast<double>(i_.at(static_cast<std::size_t>(flatIndex)));
}

std::int64_t Value::getInt(std::int64_t flatIndex) const {
  if (isFloat()) {
    return static_cast<std::int64_t>(f_.at(static_cast<std::size_t>(flatIndex)));
  }
  return i_.at(static_cast<std::size_t>(flatIndex));
}

void Value::setFloat(std::int64_t flatIndex, double v) {
  if (isFloat()) {
    f_.at(static_cast<std::size_t>(flatIndex)) = v;
  } else {
    i_.at(static_cast<std::size_t>(flatIndex)) = static_cast<std::int64_t>(v);
  }
}

void Value::setInt(std::int64_t flatIndex, std::int64_t v) {
  if (isFloat()) {
    f_.at(static_cast<std::size_t>(flatIndex)) = static_cast<double>(v);
  } else {
    i_.at(static_cast<std::size_t>(flatIndex)) = v;
  }
}

bool Value::approxEquals(const Value& other, double tolerance) const {
  if (size() != other.size()) return false;
  for (std::int64_t k = 0; k < size(); ++k) {
    if (std::abs(getFloat(k) - other.getFloat(k)) > tolerance) return false;
  }
  return true;
}

namespace {

/// A transient scalar during expression evaluation.
struct Scalar {
  bool isFloat = false;
  double f = 0.0;
  std::int64_t i = 0;

  [[nodiscard]] double asFloat() const noexcept {
    return isFloat ? f : static_cast<double>(i);
  }
  [[nodiscard]] std::int64_t asInt() const noexcept {
    return isFloat ? static_cast<std::int64_t>(f) : i;
  }
  [[nodiscard]] bool truthy() const noexcept {
    return isFloat ? (f != 0.0) : (i != 0);
  }

  [[nodiscard]] static Scalar ofFloat(double v) noexcept {
    return Scalar{true, v, 0};
  }
  [[nodiscard]] static Scalar ofInt(std::int64_t v) noexcept {
    return Scalar{false, 0.0, v};
  }
  [[nodiscard]] static Scalar ofBool(bool v) noexcept {
    return ofInt(v ? 1 : 0);
  }
};

class Interp {
 public:
  Interp(const Function& fn, Environment& env, ExecutionMeter* meter)
      : fn_(fn), env_(env), meter_(meter) {}

  void execBlock(const Block& block) {
    for (const StmtPtr& s : block.stmts()) execStmt(*s);
  }

  void execStmt(const Stmt& stmt) {
    switch (stmt.kind()) {
      case StmtKind::Assign:
        execAssign(cast<Assign>(stmt));
        break;
      case StmtKind::For:
        execFor(cast<For>(stmt));
        break;
      case StmtKind::If:
        execIf(cast<If>(stmt));
        break;
      case StmtKind::Block:
        execBlock(cast<Block>(stmt));
        break;
    }
  }

 private:
  void meterOp(OpClass op) {
    if (meter_ != nullptr) meter_->onOp(op);
  }
  void meterAccess(Storage storage, bool isWrite) {
    if (meter_ != nullptr) meter_->onAccess(storage, isWrite);
  }

  void execAssign(const Assign& assign) {
    const Scalar rhs = eval(assign.rhs());
    const VarRef& lhs = assign.lhs();
    Value& slot = varSlot(lhs.name());
    const std::int64_t flat = flatIndex(lhs, slot.type());
    const VarDecl& decl = fn_.lookup(lhs.name());
    meterAccess(decl.storage, /*isWrite=*/true);
    if (slot.type().kind() == ScalarKind::Float64) {
      slot.setFloat(flat, rhs.asFloat());
    } else {
      slot.setInt(flat, rhs.asInt());
    }
  }

  void execFor(const For& loop) {
    if (loopVars_.contains(loop.var())) {
      throw ToolchainError("nested reuse of loop variable '" + loop.var() + "'");
    }
    for (std::int64_t v = loop.lower(); v < loop.upper(); v += loop.step()) {
      loopVars_[loop.var()] = v;
      meterOp(OpClass::LoopStep);
      execBlock(loop.body());
    }
    meterOp(OpClass::Branch);  // final exit test
    loopVars_.erase(loop.var());
  }

  void execIf(const If& branch) {
    const Scalar c = eval(branch.cond());
    meterOp(OpClass::Branch);
    if (c.truthy()) {
      execBlock(branch.thenBody());
    } else {
      execBlock(branch.elseBody());
    }
  }

  Value& varSlot(const std::string& name) {
    auto it = env_.find(name);
    if (it != env_.end()) return it->second;
    const VarDecl& decl = fn_.lookup(name);
    auto [ins, _] = env_.emplace(name, Value::zeros(decl.type));
    return ins->second;
  }

  std::int64_t flatIndex(const VarRef& ref, const Type& type) {
    if (ref.indices().empty()) return 0;
    const auto& dims = type.dims();
    if (ref.indices().size() != dims.size()) {
      throw ToolchainError("rank mismatch on '" + ref.name() + "'");
    }
    std::int64_t flat = 0;
    for (std::size_t d = 0; d < dims.size(); ++d) {
      const std::int64_t idx = eval(*ref.indices()[d]).asInt();
      if (idx < 0 || idx >= dims[d]) {
        throw ToolchainError("index " + std::to_string(idx) +
                             " out of range [0," + std::to_string(dims[d]) +
                             ") on '" + ref.name() + "' dim " +
                             std::to_string(d));
      }
      flat = flat * dims[d] + idx;
      if (d != 0) meterOp(OpClass::IntMul);
      if (dims.size() > 1) meterOp(OpClass::IntAlu);
    }
    return flat;
  }

  Scalar evalRef(const VarRef& ref) {
    auto lv = loopVars_.find(ref.name());
    if (lv != loopVars_.end()) {
      if (!ref.indices().empty()) {
        throw ToolchainError("indexed loop variable '" + ref.name() + "'");
      }
      return Scalar::ofInt(lv->second);
    }
    const VarDecl& decl = fn_.lookup(ref.name());
    Value& slot = varSlot(ref.name());
    const std::int64_t flat = flatIndex(ref, slot.type());
    meterAccess(decl.storage, /*isWrite=*/false);
    if (slot.type().kind() == ScalarKind::Float64) {
      return Scalar::ofFloat(slot.getFloat(flat));
    }
    return Scalar::ofInt(slot.getInt(flat));
  }

  Scalar evalBin(const BinOp& bin) {
    // Logical operators short-circuit (and are priced as one IntAlu op,
    // matching the timing schema's single-op charge).
    if (bin.op() == BinOpKind::And) {
      const Scalar a = eval(bin.lhs());
      meterOp(OpClass::IntAlu);
      if (!a.truthy()) return Scalar::ofBool(false);
      return Scalar::ofBool(eval(bin.rhs()).truthy());
    }
    if (bin.op() == BinOpKind::Or) {
      const Scalar a = eval(bin.lhs());
      meterOp(OpClass::IntAlu);
      if (a.truthy()) return Scalar::ofBool(true);
      return Scalar::ofBool(eval(bin.rhs()).truthy());
    }

    const Scalar a = eval(bin.lhs());
    const Scalar b = eval(bin.rhs());
    const bool flt = a.isFloat || b.isFloat;
    meterOp(classifyBinOp(bin.op(), flt));

    if (isComparison(bin.op())) {
      const double x = a.asFloat();
      const double y = b.asFloat();
      switch (bin.op()) {
        case BinOpKind::Lt: return Scalar::ofBool(x < y);
        case BinOpKind::Le: return Scalar::ofBool(x <= y);
        case BinOpKind::Gt: return Scalar::ofBool(x > y);
        case BinOpKind::Ge: return Scalar::ofBool(x >= y);
        case BinOpKind::Eq: return Scalar::ofBool(x == y);
        case BinOpKind::Ne: return Scalar::ofBool(x != y);
        default: break;
      }
    }

    if (flt) {
      const double x = a.asFloat();
      const double y = b.asFloat();
      switch (bin.op()) {
        case BinOpKind::Add: return Scalar::ofFloat(x + y);
        case BinOpKind::Sub: return Scalar::ofFloat(x - y);
        case BinOpKind::Mul: return Scalar::ofFloat(x * y);
        case BinOpKind::Div:
          return Scalar::ofFloat(x / y);
        case BinOpKind::Mod: return Scalar::ofFloat(std::fmod(x, y));
        case BinOpKind::Min: return Scalar::ofFloat(std::fmin(x, y));
        case BinOpKind::Max: return Scalar::ofFloat(std::fmax(x, y));
        default: break;
      }
    } else {
      const std::int64_t x = a.asInt();
      const std::int64_t y = b.asInt();
      switch (bin.op()) {
        case BinOpKind::Add: return Scalar::ofInt(x + y);
        case BinOpKind::Sub: return Scalar::ofInt(x - y);
        case BinOpKind::Mul: return Scalar::ofInt(x * y);
        case BinOpKind::Div:
          if (y == 0) throw ToolchainError("integer division by zero");
          return Scalar::ofInt(x / y);
        case BinOpKind::Mod:
          if (y == 0) throw ToolchainError("integer modulo by zero");
          return Scalar::ofInt(x % y);
        case BinOpKind::Min: return Scalar::ofInt(std::min(x, y));
        case BinOpKind::Max: return Scalar::ofInt(std::max(x, y));
        default: break;
      }
    }
    throw ToolchainError("unhandled binary operator");
  }

  Scalar evalUn(const UnOp& un) {
    const Scalar a = eval(un.operand());
    meterOp(classifyUnOp(un.op(), a.isFloat));
    switch (un.op()) {
      case UnOpKind::Neg:
        return a.isFloat ? Scalar::ofFloat(-a.f) : Scalar::ofInt(-a.i);
      case UnOpKind::Not:
        return Scalar::ofBool(!a.truthy());
      case UnOpKind::Abs:
        return a.isFloat ? Scalar::ofFloat(std::abs(a.f))
                         : Scalar::ofInt(std::abs(a.i));
      case UnOpKind::Sqrt: return Scalar::ofFloat(std::sqrt(a.asFloat()));
      case UnOpKind::Exp: return Scalar::ofFloat(std::exp(a.asFloat()));
      case UnOpKind::Log: return Scalar::ofFloat(std::log(a.asFloat()));
      case UnOpKind::Sin: return Scalar::ofFloat(std::sin(a.asFloat()));
      case UnOpKind::Cos: return Scalar::ofFloat(std::cos(a.asFloat()));
      case UnOpKind::Tan: return Scalar::ofFloat(std::tan(a.asFloat()));
      case UnOpKind::Atan: return Scalar::ofFloat(std::atan(a.asFloat()));
      case UnOpKind::Floor: return Scalar::ofFloat(std::floor(a.asFloat()));
      case UnOpKind::ToFloat: return Scalar::ofFloat(a.asFloat());
      case UnOpKind::ToInt: return Scalar::ofInt(a.asInt());
    }
    throw ToolchainError("unhandled unary operator");
  }

  Scalar evalCall(const Call& call) {
    std::vector<Scalar> args;
    args.reserve(call.args().size());
    for (const ExprPtr& a : call.args()) args.push_back(eval(*a));
    meterOp(OpClass::MathFunc);
    const std::string& name = call.callee();
    auto arg = [&](std::size_t k) { return args.at(k).asFloat(); };
    if (name == "atan2" && args.size() == 2) {
      return Scalar::ofFloat(std::atan2(arg(0), arg(1)));
    }
    if (name == "pow" && args.size() == 2) {
      return Scalar::ofFloat(std::pow(arg(0), arg(1)));
    }
    if (name == "hypot" && args.size() == 2) {
      return Scalar::ofFloat(std::hypot(arg(0), arg(1)));
    }
    if (name == "fmod" && args.size() == 2) {
      return Scalar::ofFloat(std::fmod(arg(0), arg(1)));
    }
    throw ToolchainError("unknown intrinsic '" + name + "' with " +
                         std::to_string(args.size()) + " args");
  }

  Scalar eval(const Expr& expr) {
    switch (expr.kind()) {
      case ExprKind::IntLit:
        return Scalar::ofInt(cast<IntLit>(expr).value());
      case ExprKind::FloatLit:
        return Scalar::ofFloat(cast<FloatLit>(expr).value());
      case ExprKind::BoolLit:
        return Scalar::ofBool(cast<BoolLit>(expr).value());
      case ExprKind::VarRef:
        return evalRef(cast<VarRef>(expr));
      case ExprKind::BinOp:
        return evalBin(cast<BinOp>(expr));
      case ExprKind::UnOp:
        return evalUn(cast<UnOp>(expr));
      case ExprKind::Call:
        return evalCall(cast<Call>(expr));
      case ExprKind::Select: {
        const auto& sel = cast<Select>(expr);
        const Scalar c = eval(sel.cond());
        meterOp(OpClass::Select);
        return c.truthy() ? eval(sel.onTrue()) : eval(sel.onFalse());
      }
    }
    throw ToolchainError("unhandled expression kind");
  }

  const Function& fn_;
  Environment& env_;
  ExecutionMeter* meter_;
  std::unordered_map<std::string, std::int64_t> loopVars_;
};

}  // namespace

void Evaluator::run(Environment& env, ExecutionMeter* meter) const {
  for (const VarDecl& d : fn_.decls()) {
    if (d.role == VarRole::Input && !env.contains(d.name)) {
      throw ToolchainError("missing input '" + d.name + "' for function '" +
                           fn_.name() + "'");
    }
  }
  Interp interp(fn_, env, meter);
  interp.execBlock(fn_.body());
}

void Evaluator::runStmt(const Stmt& stmt, Environment& env,
                        ExecutionMeter* meter) const {
  Interp interp(fn_, env, meter);
  interp.execStmt(stmt);
}

Environment makeZeroEnvironment(const Function& fn) {
  Environment env;
  for (const VarDecl& d : fn.decls()) {
    env.emplace(d.name, Value::zeros(d.type));
  }
  return env;
}

}  // namespace argo::ir
