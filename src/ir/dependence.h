// Data dependence analysis.
//
// Two layers, matching what the ARGO flow needs:
//
//  1. Name-level read/write sets (VarUsage) — drive the HTG builder's
//     dependence edges between tasks: task B depends on task A iff A writes
//     something B reads (flow), B writes something A reads (anti), or both
//     write the same variable (output).
//
//  2. Loop-carried dependence testing — drives the legality of loop-level
//     parallelization (splitting a For's iteration range across cores).
//     Subscripts affine in the loop variables are compared with the classic
//     ZIV / strong-SIV / GCD tests; anything non-affine is conservatively
//     dependent.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ir/affine.h"
#include "ir/function.h"

namespace argo::ir {

/// Name-level read and write sets of a statement or region.
struct VarUsage {
  std::set<std::string> reads;
  std::set<std::string> writes;

  /// True if `later` must be ordered after `*this` (flow, anti or output
  /// dependence at name granularity).
  [[nodiscard]] bool conflictsWith(const VarUsage& later) const;

  void merge(const VarUsage& other);
};

/// Collects the read/write sets of `stmt`. Loop variables of loops *inside*
/// stmt are not reported (they are private to the region).
[[nodiscard]] VarUsage collectUsage(const Stmt& stmt);
[[nodiscard]] VarUsage collectUsage(const Block& block);

/// One array access inside a loop body, with affine subscripts where
/// possible.
struct ArrayAccess {
  std::string array;
  bool isWrite = false;
  /// One form per subscript dimension; non-affine forms have affine==false.
  std::vector<AffineForm> subscripts;
};

/// Collects all array accesses in `block`. `loopVars` maps enclosing loop
/// variable names to their nesting depth; subscripts are analyzed as affine
/// forms over those variables. Scalar accesses are reported with empty
/// `subscripts`.
[[nodiscard]] std::vector<ArrayAccess> collectArrayAccesses(
    const Block& block, const std::map<std::string, int>& loopVars);

/// Result of a dependence test between two subscript forms.
enum class DependenceAnswer {
  Independent,  ///< Proven: no iteration pair with distinct values conflicts.
  Dependent,    ///< Proven or assumed (conservative) dependence.
};

/// Tests whether accesses `a` and `b` (same array, at least one write) may
/// conflict for two *different* iterations of loop `loopVar`, whose
/// normalized iteration range is [0, tripCount). Other loop variables are
/// treated as equal in both instances (i.e. we test for dependences carried
/// by `loopVar` only).
[[nodiscard]] DependenceAnswer testLoopCarried(const ArrayAccess& a,
                                               const ArrayAccess& b,
                                               const std::string& loopVar,
                                               std::int64_t tripCount);

/// Scalars written inside a loop body are parallelization-blockers unless
/// provably private: the scalar is written at the top level of the body
/// before any read in that iteration. This detects the common
/// "tmp = ...; use tmp" reduction-free pattern.
[[nodiscard]] bool isScalarPrivatizable(const Block& body,
                                        const std::string& scalar);

/// Top-level query used by the parallelizing transforms: can iterations of
/// `loop` execute concurrently? True when no loop-carried dependence exists
/// on `loop`'s variable. `fn` provides declarations (scalar vs array).
[[nodiscard]] bool isLoopParallel(const For& loop, const Function& fn);

}  // namespace argo::ir
