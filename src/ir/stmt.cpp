#include "ir/stmt.h"

namespace argo::ir {

StmtPtr Block::clone() const { return cloneBlock(); }

std::unique_ptr<Block> Block::cloneBlock() const {
  std::vector<StmtPtr> stmts;
  stmts.reserve(stmts_.size());
  for (const StmtPtr& s : stmts_) stmts.push_back(s->clone());
  auto out = std::make_unique<Block>(std::move(stmts));
  out->label = label;
  return out;
}

StmtPtr Assign::clone() const {
  ExprPtr lhsExpr = lhs_->clone();
  auto lhsRef = std::unique_ptr<VarRef>(static_cast<VarRef*>(lhsExpr.release()));
  auto out = std::make_unique<Assign>(std::move(lhsRef), rhs_->clone());
  out->label = label;
  return out;
}

StmtPtr For::clone() const {
  auto out = std::make_unique<For>(var_, lower_, upper_, body_->cloneBlock(),
                                   step_);
  out->label = label;
  return out;
}

StmtPtr If::clone() const {
  auto out = std::make_unique<If>(cond_->clone(), thenBody_->cloneBlock(),
                                  elseBody_->cloneBlock());
  out->label = label;
  return out;
}

}  // namespace argo::ir
