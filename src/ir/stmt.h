// Statement nodes of the ARGO IR.
//
// The IR is *structured*: there is no goto, and loops are counted `for`
// loops with compile-time constant bounds. This restriction is what the
// whole tool-chain trades on — it makes loop bounds, task extraction, and
// WCET analysis decidable (paper Section II-B/III-C).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/expr.h"

namespace argo::ir {

class Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// Discriminator for Stmt subclasses.
enum class StmtKind : std::uint8_t { Assign, For, If, Block };

/// Base class of all statements.
class Stmt {
 public:
  virtual ~Stmt() = default;
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;

  [[nodiscard]] StmtKind kind() const noexcept { return kind_; }
  [[nodiscard]] virtual StmtPtr clone() const = 0;

  /// Optional label attached by the front end / task extractor, used to
  /// name tasks and to report diagnostics. Empty by default.
  std::string label;

 protected:
  explicit Stmt(StmtKind kind) noexcept : kind_(kind) {}

 private:
  StmtKind kind_;
};

/// Ordered sequence of statements.
class Block final : public Stmt {
 public:
  static constexpr StmtKind Kind = StmtKind::Block;
  Block() : Stmt(Kind) {}
  explicit Block(std::vector<StmtPtr> stmts)
      : Stmt(Kind), stmts_(std::move(stmts)) {}

  [[nodiscard]] const std::vector<StmtPtr>& stmts() const noexcept {
    return stmts_;
  }
  [[nodiscard]] std::vector<StmtPtr>& stmts() noexcept { return stmts_; }
  void append(StmtPtr stmt) { stmts_.push_back(std::move(stmt)); }
  [[nodiscard]] bool empty() const noexcept { return stmts_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return stmts_.size(); }

  [[nodiscard]] StmtPtr clone() const override;
  [[nodiscard]] std::unique_ptr<Block> cloneBlock() const;

 private:
  std::vector<StmtPtr> stmts_;
};

/// Assignment to a scalar variable or an array element.
class Assign final : public Stmt {
 public:
  static constexpr StmtKind Kind = StmtKind::Assign;
  Assign(std::unique_ptr<VarRef> lhs, ExprPtr rhs)
      : Stmt(Kind), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  [[nodiscard]] const VarRef& lhs() const noexcept { return *lhs_; }
  [[nodiscard]] VarRef& lhs() noexcept { return *lhs_; }
  [[nodiscard]] const Expr& rhs() const noexcept { return *rhs_; }
  [[nodiscard]] ExprPtr takeRhs() noexcept { return std::move(rhs_); }
  void setRhs(ExprPtr rhs) noexcept { rhs_ = std::move(rhs); }

  [[nodiscard]] StmtPtr clone() const override;

 private:
  std::unique_ptr<VarRef> lhs_;
  ExprPtr rhs_;
};

/// Counted loop: for (var = lower; var < upper; var += step) body.
///
/// Bounds and step are compile-time constants; step > 0. The trip count is
/// therefore statically known, which the WCET analyses rely on.
class For final : public Stmt {
 public:
  static constexpr StmtKind Kind = StmtKind::For;
  For(std::string var, std::int64_t lower, std::int64_t upper,
      std::unique_ptr<Block> body, std::int64_t step = 1)
      : Stmt(Kind),
        var_(std::move(var)),
        lower_(lower),
        upper_(upper),
        step_(step),
        body_(std::move(body)) {}

  [[nodiscard]] const std::string& var() const noexcept { return var_; }
  void setVar(std::string var) { var_ = std::move(var); }
  [[nodiscard]] std::int64_t lower() const noexcept { return lower_; }
  [[nodiscard]] std::int64_t upper() const noexcept { return upper_; }
  [[nodiscard]] std::int64_t step() const noexcept { return step_; }
  void setBounds(std::int64_t lower, std::int64_t upper) noexcept {
    lower_ = lower;
    upper_ = upper;
  }

  /// Number of iterations executed (0 when the range is empty).
  [[nodiscard]] std::int64_t tripCount() const noexcept {
    if (upper_ <= lower_ || step_ <= 0) return 0;
    return (upper_ - lower_ + step_ - 1) / step_;
  }

  [[nodiscard]] const Block& body() const noexcept { return *body_; }
  [[nodiscard]] Block& body() noexcept { return *body_; }
  [[nodiscard]] std::unique_ptr<Block> takeBody() noexcept {
    return std::move(body_);
  }
  void setBody(std::unique_ptr<Block> body) noexcept {
    body_ = std::move(body);
  }

  [[nodiscard]] StmtPtr clone() const override;

 private:
  std::string var_;
  std::int64_t lower_;
  std::int64_t upper_;
  std::int64_t step_;
  std::unique_ptr<Block> body_;
};

/// Two-way conditional. elseBody may be empty.
class If final : public Stmt {
 public:
  static constexpr StmtKind Kind = StmtKind::If;
  If(ExprPtr cond, std::unique_ptr<Block> thenBody,
     std::unique_ptr<Block> elseBody)
      : Stmt(Kind),
        cond_(std::move(cond)),
        thenBody_(std::move(thenBody)),
        elseBody_(std::move(elseBody)) {}

  [[nodiscard]] const Expr& cond() const noexcept { return *cond_; }
  [[nodiscard]] ExprPtr takeCond() noexcept { return std::move(cond_); }
  void setCond(ExprPtr cond) noexcept { cond_ = std::move(cond); }
  [[nodiscard]] const Block& thenBody() const noexcept { return *thenBody_; }
  [[nodiscard]] Block& thenBody() noexcept { return *thenBody_; }
  [[nodiscard]] const Block& elseBody() const noexcept { return *elseBody_; }
  [[nodiscard]] Block& elseBody() noexcept { return *elseBody_; }

  [[nodiscard]] StmtPtr clone() const override;

 private:
  ExprPtr cond_;
  std::unique_ptr<Block> thenBody_;
  std::unique_ptr<Block> elseBody_;
};

/// Checked downcast helpers for statements.
template <typename T>
[[nodiscard]] bool isa(const Stmt& s) noexcept {
  return s.kind() == T::Kind;
}

template <typename T>
[[nodiscard]] const T& cast(const Stmt& s) {
  return static_cast<const T&>(s);
}

template <typename T>
[[nodiscard]] T& cast(Stmt& s) {
  return static_cast<T&>(s);
}

template <typename T>
[[nodiscard]] const T* dynCast(const Stmt& s) noexcept {
  return isa<T>(s) ? &static_cast<const T&>(s) : nullptr;
}

template <typename T>
[[nodiscard]] T* dynCast(Stmt& s) noexcept {
  return isa<T>(s) ? &static_cast<T&>(s) : nullptr;
}

}  // namespace argo::ir
