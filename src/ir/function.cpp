#include "ir/function.h"

#include <functional>
#include <unordered_set>

#include "support/diagnostics.h"

namespace argo::ir {

using support::ToolchainError;

const char* storageName(Storage storage) noexcept {
  switch (storage) {
    case Storage::Local: return "local";
    case Storage::Scratchpad: return "spm";
    case Storage::Shared: return "shared";
  }
  return "?";
}

const char* varRoleName(VarRole role) noexcept {
  switch (role) {
    case VarRole::Input: return "in";
    case VarRole::Output: return "out";
    case VarRole::State: return "state";
    case VarRole::Temp: return "tmp";
    case VarRole::Const: return "const";
  }
  return "?";
}

VarDecl& Function::declare(VarDecl decl) {
  if (index_.contains(decl.name)) {
    throw ToolchainError("duplicate variable '" + decl.name + "' in function '" +
                         name_ + "'");
  }
  index_.emplace(decl.name, decls_.size());
  decls_.push_back(std::move(decl));
  return decls_.back();
}

VarDecl& Function::declare(std::string name, Type type, VarRole role,
                           Storage storage) {
  return declare(VarDecl{std::move(name), std::move(type), role, storage});
}

const VarDecl* Function::find(const std::string& name) const noexcept {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &decls_[it->second];
}

VarDecl* Function::find(const std::string& name) noexcept {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &decls_[it->second];
}

const VarDecl& Function::lookup(const std::string& name) const {
  const VarDecl* decl = find(name);
  if (decl == nullptr) {
    throw ToolchainError("undeclared variable '" + name + "' in function '" +
                         name_ + "'");
  }
  return *decl;
}

std::unique_ptr<Function> Function::clone() const {
  auto out = std::make_unique<Function>(name_);
  for (const VarDecl& d : decls_) out->declare(d);
  out->setBody(body_->cloneBlock());
  return out;
}

std::int64_t Function::storageBytes(Storage storage) const noexcept {
  std::int64_t total = 0;
  for (const VarDecl& d : decls_) {
    if (d.storage == storage) total += d.type.byteSize();
  }
  return total;
}

Function& Program::add(std::unique_ptr<Function> fn) {
  functions_.push_back(std::move(fn));
  return *functions_.back();
}

const Function* Program::find(const std::string& name) const noexcept {
  for (const auto& fn : functions_) {
    if (fn->name() == name) return fn.get();
  }
  return nullptr;
}

Function* Program::find(const std::string& name) noexcept {
  for (const auto& fn : functions_) {
    if (fn->name() == name) return fn.get();
  }
  return nullptr;
}

namespace {

class Validator {
 public:
  explicit Validator(const Function& fn) : fn_(fn) {}

  std::vector<std::string> run() {
    visitBlock(fn_.body());
    return std::move(problems_);
  }

 private:
  void visitBlock(const Block& block) {
    for (const StmtPtr& s : block.stmts()) visitStmt(*s);
  }

  void visitStmt(const Stmt& stmt) {
    switch (stmt.kind()) {
      case StmtKind::Assign: {
        const auto& assign = cast<Assign>(stmt);
        visitRef(assign.lhs(), /*isWrite=*/true);
        visitExpr(assign.rhs());
        break;
      }
      case StmtKind::For: {
        const auto& loop = cast<For>(stmt);
        if (loop.step() <= 0) {
          problems_.push_back("loop '" + loop.var() + "' has non-positive step");
        }
        if (fn_.find(loop.var()) != nullptr) {
          problems_.push_back("loop variable '" + loop.var() +
                              "' shadows a declared variable");
        }
        if (loopVars_.contains(loop.var())) {
          problems_.push_back("loop variable '" + loop.var() +
                              "' shadows an enclosing loop variable");
        }
        loopVars_.insert(loop.var());
        visitBlock(loop.body());
        loopVars_.erase(loop.var());
        break;
      }
      case StmtKind::If: {
        const auto& branch = cast<If>(stmt);
        visitExpr(branch.cond());
        visitBlock(branch.thenBody());
        visitBlock(branch.elseBody());
        break;
      }
      case StmtKind::Block:
        visitBlock(cast<Block>(stmt));
        break;
    }
  }

  void visitRef(const VarRef& ref, bool isWrite) {
    const bool isLoopVar = loopVars_.contains(ref.name());
    const VarDecl* decl = fn_.find(ref.name());
    if (isLoopVar) {
      if (isWrite) {
        problems_.push_back("assignment to loop variable '" + ref.name() + "'");
      }
      if (!ref.indices().empty()) {
        problems_.push_back("loop variable '" + ref.name() + "' indexed");
      }
      return;
    }
    if (decl == nullptr) {
      problems_.push_back("undeclared variable '" + ref.name() + "'");
      return;
    }
    const int rank = decl->type.rank();
    const int nidx = static_cast<int>(ref.indices().size());
    if (nidx != 0 && nidx != rank) {
      problems_.push_back("variable '" + ref.name() + "' has rank " +
                          std::to_string(rank) + " but " +
                          std::to_string(nidx) + " indices");
    }
    if (nidx == 0 && rank != 0) {
      problems_.push_back("whole-array reference to '" + ref.name() +
                          "' (array traffic must use loops)");
    }
    if (isWrite &&
        (decl->role == VarRole::Input || decl->role == VarRole::Const)) {
      problems_.push_back("write to read-only variable '" + ref.name() + "'");
    }
    for (const ExprPtr& idx : ref.indices()) visitExpr(*idx);
  }

  void visitExpr(const Expr& expr) {
    switch (expr.kind()) {
      case ExprKind::IntLit:
      case ExprKind::FloatLit:
      case ExprKind::BoolLit:
        break;
      case ExprKind::VarRef:
        visitRef(cast<VarRef>(expr), /*isWrite=*/false);
        break;
      case ExprKind::BinOp: {
        const auto& bin = cast<BinOp>(expr);
        visitExpr(bin.lhs());
        visitExpr(bin.rhs());
        break;
      }
      case ExprKind::UnOp:
        visitExpr(cast<UnOp>(expr).operand());
        break;
      case ExprKind::Call:
        for (const ExprPtr& a : cast<Call>(expr).args()) visitExpr(*a);
        break;
      case ExprKind::Select: {
        const auto& sel = cast<Select>(expr);
        visitExpr(sel.cond());
        visitExpr(sel.onTrue());
        visitExpr(sel.onFalse());
        break;
      }
    }
  }

  const Function& fn_;
  std::unordered_set<std::string> loopVars_;
  std::vector<std::string> problems_;
};

}  // namespace

std::vector<std::string> validate(const Function& fn) {
  return Validator(fn).run();
}

}  // namespace argo::ir
