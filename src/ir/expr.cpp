#include "ir/expr.h"

namespace argo::ir {

const char* binOpName(BinOpKind op) noexcept {
  switch (op) {
    case BinOpKind::Add: return "+";
    case BinOpKind::Sub: return "-";
    case BinOpKind::Mul: return "*";
    case BinOpKind::Div: return "/";
    case BinOpKind::Mod: return "%";
    case BinOpKind::Min: return "min";
    case BinOpKind::Max: return "max";
    case BinOpKind::Lt: return "<";
    case BinOpKind::Le: return "<=";
    case BinOpKind::Gt: return ">";
    case BinOpKind::Ge: return ">=";
    case BinOpKind::Eq: return "==";
    case BinOpKind::Ne: return "!=";
    case BinOpKind::And: return "&&";
    case BinOpKind::Or: return "||";
  }
  return "?";
}

const char* unOpName(UnOpKind op) noexcept {
  switch (op) {
    case UnOpKind::Neg: return "-";
    case UnOpKind::Not: return "!";
    case UnOpKind::Abs: return "abs";
    case UnOpKind::Sqrt: return "sqrt";
    case UnOpKind::Exp: return "exp";
    case UnOpKind::Log: return "log";
    case UnOpKind::Sin: return "sin";
    case UnOpKind::Cos: return "cos";
    case UnOpKind::Tan: return "tan";
    case UnOpKind::Atan: return "atan";
    case UnOpKind::Floor: return "floor";
    case UnOpKind::ToFloat: return "float";
    case UnOpKind::ToInt: return "int";
  }
  return "?";
}

bool isComparison(BinOpKind op) noexcept {
  switch (op) {
    case BinOpKind::Lt:
    case BinOpKind::Le:
    case BinOpKind::Gt:
    case BinOpKind::Ge:
    case BinOpKind::Eq:
    case BinOpKind::Ne:
      return true;
    default:
      return false;
  }
}

bool isLogical(BinOpKind op) noexcept {
  return op == BinOpKind::And || op == BinOpKind::Or;
}

ExprPtr VarRef::clone() const {
  std::vector<ExprPtr> indices;
  indices.reserve(indices_.size());
  for (const ExprPtr& idx : indices_) indices.push_back(idx->clone());
  return std::make_unique<VarRef>(name_, std::move(indices));
}

ExprPtr Call::clone() const {
  std::vector<ExprPtr> args;
  args.reserve(args_.size());
  for (const ExprPtr& a : args_) args.push_back(a->clone());
  return std::make_unique<Call>(callee_, std::move(args));
}

}  // namespace argo::ir
