#include "ir/cost.h"

#include <algorithm>

namespace argo::ir {

const char* opClassName(OpClass op) noexcept {
  switch (op) {
    case OpClass::IntAlu: return "int_alu";
    case OpClass::IntMul: return "int_mul";
    case OpClass::IntDiv: return "int_div";
    case OpClass::FloatAdd: return "float_add";
    case OpClass::FloatMul: return "float_mul";
    case OpClass::FloatDiv: return "float_div";
    case OpClass::MathFunc: return "math_func";
    case OpClass::Compare: return "compare";
    case OpClass::Select: return "select";
    case OpClass::Branch: return "branch";
    case OpClass::LoopStep: return "loop_step";
  }
  return "?";
}

OpCounts& OpCounts::operator+=(const OpCounts& other) noexcept {
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  return *this;
}

OpCounts& OpCounts::operator*=(std::int64_t factor) noexcept {
  for (std::int64_t& c : counts_) c *= factor;
  return *this;
}

OpCounts OpCounts::max(const OpCounts& a, const OpCounts& b) noexcept {
  OpCounts out;
  for (std::size_t i = 0; i < a.counts_.size(); ++i) {
    out.counts_[i] = std::max(a.counts_[i], b.counts_[i]);
  }
  return out;
}

std::int64_t OpCounts::total() const noexcept {
  std::int64_t sum = 0;
  for (std::int64_t c : counts_) sum += c;
  return sum;
}

OpClass classifyBinOp(BinOpKind op, bool floatOperands) noexcept {
  switch (op) {
    case BinOpKind::Add:
    case BinOpKind::Sub:
    case BinOpKind::Min:
    case BinOpKind::Max:
      return floatOperands ? OpClass::FloatAdd : OpClass::IntAlu;
    case BinOpKind::Mul:
      return floatOperands ? OpClass::FloatMul : OpClass::IntMul;
    case BinOpKind::Div:
    case BinOpKind::Mod:
      return floatOperands ? OpClass::FloatDiv : OpClass::IntDiv;
    case BinOpKind::Lt:
    case BinOpKind::Le:
    case BinOpKind::Gt:
    case BinOpKind::Ge:
    case BinOpKind::Eq:
    case BinOpKind::Ne:
      return floatOperands ? OpClass::FloatAdd : OpClass::Compare;
    case BinOpKind::And:
    case BinOpKind::Or:
      return OpClass::IntAlu;
  }
  return OpClass::IntAlu;
}

OpClass classifyUnOp(UnOpKind op, bool floatOperand) noexcept {
  switch (op) {
    case UnOpKind::Neg:
    case UnOpKind::Abs:
      return floatOperand ? OpClass::FloatAdd : OpClass::IntAlu;
    case UnOpKind::Not:
      return OpClass::IntAlu;
    case UnOpKind::Sqrt:
      return OpClass::FloatDiv;
    case UnOpKind::Exp:
    case UnOpKind::Log:
    case UnOpKind::Sin:
    case UnOpKind::Cos:
    case UnOpKind::Tan:
    case UnOpKind::Atan:
      return OpClass::MathFunc;
    case UnOpKind::Floor:
    case UnOpKind::ToFloat:
    case UnOpKind::ToInt:
      return OpClass::IntAlu;
  }
  return OpClass::IntAlu;
}

}  // namespace argo::ir
