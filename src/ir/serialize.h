// Binary (de)serialization of ARGO IR function trees.
//
// The textual printer (ir/printer.h) is for humans and for content hashing;
// round-tripping it is explicitly a non-goal and there is no parser. The
// on-disk stage cache (support/disk_cache.h) needs actual Function values
// back, so this module defines the one canonical binary encoding: a
// pre-order walk of the tree in the tagged ByteWriter framing, every enum
// written as its integer value and *range-checked on read*.
//
// Decoding is total: deserializeFunction() returns nullptr on any
// malformed input — unknown node kind, out-of-range enum, duplicate
// declaration, absurd counts, trailing bytes — and never throws or
// crashes. In the cache stack the payload bytes have already passed the
// record checksum, so a decode failure there means version-skew inside an
// up-to-date envelope or an encoder bug; either way the caller treats it
// as a reject and recomputes.
//
// The encoding covers everything the toolchain's cached stages observe:
// name, declarations (name/type/role/storage, in declaration order —
// order is meaningful, the evaluator's environment layout follows it) and
// the full statement/expression tree including statement labels (task
// names derive from them).
#pragma once

#include <memory>

#include "ir/function.h"
#include "support/disk_cache.h"

namespace argo::ir {

/// Appends the canonical binary encoding of `fn` to `w`.
void serializeFunction(const Function& fn, support::ByteWriter& w);

/// Decodes one Function previously written by serializeFunction.
/// Returns nullptr (leaving `r` failed) on any malformed input; on
/// success the reader is positioned just past the function, so multiple
/// values can share one payload stream.
[[nodiscard]] std::unique_ptr<Function> deserializeFunction(
    support::ByteReader& r);

/// Statement-level entry points (task bodies in the cached task graphs
/// are statement clones, not whole functions). Same contract as the
/// function pair.
void serializeStmt(const Stmt& s, support::ByteWriter& w);
[[nodiscard]] StmtPtr deserializeStmt(support::ByteReader& r);

}  // namespace argo::ir
