// Types of the ARGO intermediate representation (IR).
//
// The ARGO IR is a C-subset: scalars (bool, 32-bit int, 64-bit float) and
// dense rectangular arrays of scalars. This mirrors the paper's Section II-B:
// Xcos/Scilab models are compiled to "an intermediate program representation
// based on a subset of the C language". Rectangular static shapes are what
// make the later WCET analysis (static loop bounds, static buffer sizes)
// possible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace argo::ir {

/// Scalar element kinds supported by the IR.
enum class ScalarKind : std::uint8_t { Bool, Int32, Float64 };

/// Byte size of one element of the given scalar kind on the target.
[[nodiscard]] constexpr int scalarByteSize(ScalarKind kind) noexcept {
  switch (kind) {
    case ScalarKind::Bool: return 1;
    case ScalarKind::Int32: return 4;
    case ScalarKind::Float64: return 8;
  }
  return 0;
}

[[nodiscard]] const char* scalarKindName(ScalarKind kind) noexcept;

/// A scalar or dense rectangular array type.
///
/// Invariant: every dimension extent is >= 1. A scalar has no dimensions.
class Type {
 public:
  Type() = default;

  [[nodiscard]] static Type scalar(ScalarKind kind) { return Type(kind, {}); }
  [[nodiscard]] static Type array(ScalarKind kind, std::vector<int> dims) {
    return Type(kind, std::move(dims));
  }
  [[nodiscard]] static Type int32() { return scalar(ScalarKind::Int32); }
  [[nodiscard]] static Type float64() { return scalar(ScalarKind::Float64); }
  [[nodiscard]] static Type boolean() { return scalar(ScalarKind::Bool); }

  [[nodiscard]] ScalarKind kind() const noexcept { return kind_; }
  [[nodiscard]] const std::vector<int>& dims() const noexcept { return dims_; }
  [[nodiscard]] bool isScalar() const noexcept { return dims_.empty(); }
  [[nodiscard]] int rank() const noexcept {
    return static_cast<int>(dims_.size());
  }

  /// Total number of scalar elements (1 for scalars).
  [[nodiscard]] std::int64_t elementCount() const noexcept;

  /// Total storage size in bytes on the target platform.
  [[nodiscard]] std::int64_t byteSize() const noexcept {
    return elementCount() * scalarByteSize(kind_);
  }

  /// Rendered as e.g. "f64", "i32[4][8]".
  [[nodiscard]] std::string str() const;

  friend bool operator==(const Type&, const Type&) = default;

 private:
  Type(ScalarKind kind, std::vector<int> dims)
      : kind_(kind), dims_(std::move(dims)) {}

  ScalarKind kind_ = ScalarKind::Float64;
  std::vector<int> dims_;
};

}  // namespace argo::ir
