// Reference interpreter for the ARGO IR.
//
// The evaluator serves three purposes:
//  1. Golden-model testing: diagram-compiled IR must compute the same values
//     as the hand-written C++ use-case references (tests/).
//  2. Transformation validation: a pass is semantics-preserving iff original
//     and transformed functions evaluate equal on random inputs.
//  3. Execution-time measurement: with an ExecutionMeter attached, every
//     priced operation and memory access is reported, giving the simulator
//     the *actual* (input-dependent) cost of a task, to compare against the
//     static WCET bound.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/cost.h"
#include "ir/function.h"

namespace argo::ir {

/// Runtime value: a scalar or dense array, stored per element kind.
class Value {
 public:
  Value() = default;
  explicit Value(Type type);

  [[nodiscard]] static Value zeros(Type type) { return Value(std::move(type)); }
  [[nodiscard]] static Value scalarFloat(double v);
  [[nodiscard]] static Value scalarInt(std::int64_t v);
  [[nodiscard]] static Value scalarBool(bool v);
  [[nodiscard]] static Value floats(Type type, std::vector<double> data);

  [[nodiscard]] const Type& type() const noexcept { return type_; }
  [[nodiscard]] bool isFloat() const noexcept {
    return type_.kind() == ScalarKind::Float64;
  }

  [[nodiscard]] double getFloat(std::int64_t flatIndex = 0) const;
  [[nodiscard]] std::int64_t getInt(std::int64_t flatIndex = 0) const;
  void setFloat(std::int64_t flatIndex, double v);
  void setInt(std::int64_t flatIndex, std::int64_t v);

  /// Number of scalar elements.
  [[nodiscard]] std::int64_t size() const noexcept {
    return type_.elementCount();
  }

  /// Raw access for bulk initialization (float-kind values only).
  [[nodiscard]] std::vector<double>& floatData() { return f_; }
  [[nodiscard]] const std::vector<double>& floatData() const { return f_; }
  [[nodiscard]] std::vector<std::int64_t>& intData() { return i_; }
  [[nodiscard]] const std::vector<std::int64_t>& intData() const { return i_; }

  /// Element-wise comparison with absolute tolerance for floats.
  [[nodiscard]] bool approxEquals(const Value& other,
                                  double tolerance = 1e-9) const;

 private:
  Type type_ = Type::float64();
  std::vector<double> f_;        // Float64 payload
  std::vector<std::int64_t> i_;  // Int32/Bool payload
};

/// Named variable environment.
using Environment = std::unordered_map<std::string, Value>;

/// Receives every priced event during evaluation.
class ExecutionMeter {
 public:
  virtual ~ExecutionMeter() = default;
  virtual void onOp(OpClass op) = 0;
  virtual void onAccess(Storage storage, bool isWrite) = 0;
};

/// Meter that just accumulates counters.
class CountingMeter final : public ExecutionMeter {
 public:
  void onOp(OpClass op) override { ops_[op] += 1; }
  void onAccess(Storage storage, bool isWrite) override {
    auto& slot = isWrite ? writes_ : reads_;
    slot[static_cast<std::size_t>(storage)] += 1;
  }

  [[nodiscard]] const OpCounts& ops() const noexcept { return ops_; }
  [[nodiscard]] std::int64_t reads(Storage s) const noexcept {
    return reads_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] std::int64_t writes(Storage s) const noexcept {
    return writes_[static_cast<std::size_t>(s)];
  }

 private:
  OpCounts ops_;
  std::array<std::int64_t, 3> reads_{};
  std::array<std::int64_t, 3> writes_{};
};

/// Interprets a function over an environment.
///
/// The environment must contain every Input variable; State variables are
/// zero-initialized when absent and persist across run() calls; Output and
/// Temp variables are (re)created. Throws ToolchainError on out-of-range
/// indices or division by zero — programs the tool-chain generates are
/// expected to be total.
class Evaluator {
 public:
  explicit Evaluator(const Function& fn) : fn_(fn) {}

  /// Runs the whole function body.
  void run(Environment& env, ExecutionMeter* meter = nullptr) const;

  /// Runs one statement (used by the simulator to execute a single task's
  /// slice of the function).
  void runStmt(const Stmt& stmt, Environment& env,
               ExecutionMeter* meter = nullptr) const;

 private:
  const Function& fn_;
};

/// Builds an environment with zero-valued Inputs/States for `fn`.
[[nodiscard]] Environment makeZeroEnvironment(const Function& fn);

}  // namespace argo::ir
