#include "transform/loop_transforms.h"

#include <algorithm>
#include <functional>
#include <map>

#include "ir/builder.h"
#include "ir/dependence.h"
#include "ir/rewrite.h"

namespace argo::transform {

namespace {

using ir::Block;
using ir::For;
using ir::Stmt;
using ir::StmtPtr;

/// Applies `rewrite` to every statement list in the function, outermost
/// first. `rewrite` receives the list and may replace it wholesale; it
/// returns true when it changed something.
template <typename Fn>
bool rewriteBlocks(Block& block, const Fn& rewrite) {
  bool changed = rewrite(block);
  for (const StmtPtr& s : block.stmts()) {
    switch (s->kind()) {
      case ir::StmtKind::For:
        changed |= rewriteBlocks(ir::cast<For>(*s).body(), rewrite);
        break;
      case ir::StmtKind::If: {
        auto& branch = ir::cast<ir::If>(*s);
        changed |= rewriteBlocks(branch.thenBody(), rewrite);
        changed |= rewriteBlocks(branch.elseBody(), rewrite);
        break;
      }
      case ir::StmtKind::Block:
        changed |= rewriteBlocks(ir::cast<Block>(*s), rewrite);
        break;
      case ir::StmtKind::Assign:
        break;
    }
  }
  return changed;
}

}  // namespace

// ------------------------------------------------------------- LoopUnroll

bool LoopUnroll::run(ir::Function& fn) {
  const std::int64_t maxTrip = maxTrip_;
  auto rewrite = [maxTrip](Block& block) {
    bool changed = false;
    std::vector<StmtPtr> out;
    out.reserve(block.stmts().size());
    for (StmtPtr& s : block.stmts()) {
      auto* loop = ir::dynCast<For>(*s);
      if (loop == nullptr || loop->tripCount() > maxTrip ||
          loop->tripCount() == 0) {
        out.push_back(std::move(s));
        continue;
      }
      changed = true;
      for (std::int64_t v = loop->lower(); v < loop->upper();
           v += loop->step()) {
        auto copy = loop->body().cloneBlock();
        const ir::IntLit value(v);
        for (const StmtPtr& inner : copy->stmts()) {
          ir::substituteVar(*inner, loop->var(), value);
        }
        for (StmtPtr& inner : copy->stmts()) {
          if (inner->label.empty()) inner->label = s->label;
          out.push_back(std::move(inner));
        }
      }
    }
    block.stmts() = std::move(out);  // stmts were moved out unconditionally
    return changed;
  };
  return rewriteBlocks(fn.body(), rewrite);
}

// ---------------------------------------------------------- PartialUnroll

bool PartialUnroll::run(ir::Function& fn) {
  const int factor = factor_;
  const std::int64_t minTrip = minTrip_;
  if (factor < 2) return false;
  auto rewrite = [factor, minTrip](Block& block) {
    bool changed = false;
    std::vector<StmtPtr> out;
    out.reserve(block.stmts().size());
    for (StmtPtr& s : block.stmts()) {
      auto* loop = ir::dynCast<For>(*s);
      if (loop == nullptr || loop->step() != 1 ||
          loop->tripCount() < minTrip || loop->tripCount() < factor) {
        out.push_back(std::move(s));
        continue;
      }
      changed = true;
      const std::int64_t trip = loop->tripCount();
      const std::int64_t mainTrips = trip / factor;
      const std::int64_t mainUpper = loop->lower() + mainTrips * factor;

      // Main loop: step `factor`, body replicated with v -> v + j.
      auto mainBody = ir::block();
      for (int j = 0; j < factor; ++j) {
        auto copy = loop->body().cloneBlock();
        if (j != 0) {
          const auto offset = ir::add(ir::var(loop->var()), ir::lit(j));
          for (const StmtPtr& inner : copy->stmts()) {
            ir::substituteVar(*inner, loop->var(), *offset);
          }
        }
        for (StmtPtr& inner : copy->stmts()) {
          mainBody->append(std::move(inner));
        }
      }
      auto mainLoop = std::make_unique<For>(loop->var(), loop->lower(),
                                            mainUpper, std::move(mainBody),
                                            factor);
      mainLoop->label = s->label.empty() ? "" : s->label + ".u";
      out.push_back(std::move(mainLoop));

      // Remainder loop (original body, unit step).
      if (mainUpper < loop->upper()) {
        auto tail = std::make_unique<For>(loop->var(), mainUpper,
                                          loop->upper(),
                                          loop->body().cloneBlock(), 1);
        tail->label = s->label.empty() ? "" : s->label + ".tail";
        out.push_back(std::move(tail));
      }
    }
    block.stmts() = std::move(out);  // stmts were moved out unconditionally
    return changed;
  };
  return rewriteBlocks(fn.body(), rewrite);
}

// ------------------------------------------------------------ LoopFission

bool LoopFission::run(ir::Function& fn) {
  auto rewrite = [&fn](Block& block) {
    bool changed = false;
    std::vector<StmtPtr> out;
    out.reserve(block.stmts().size());
    for (StmtPtr& s : block.stmts()) {
      auto* loop = ir::dynCast<For>(*s);
      if (loop == nullptr || loop->body().size() < 2 ||
          !ir::isLoopParallel(*loop, fn)) {
        out.push_back(std::move(s));
        continue;
      }
      // Legality: the loop is parallel (iterations independent), and body
      // statements are pairwise non-conflicting, so no value flows between
      // the would-be fission pieces within an iteration either.
      std::vector<ir::VarUsage> usages;
      usages.reserve(loop->body().size());
      for (const StmtPtr& inner : loop->body().stmts()) {
        usages.push_back(ir::collectUsage(*inner));
      }
      bool independent = true;
      for (std::size_t i = 0; i < usages.size() && independent; ++i) {
        for (std::size_t j = i + 1; j < usages.size(); ++j) {
          if (usages[i].conflictsWith(usages[j]) ||
              usages[j].conflictsWith(usages[i])) {
            independent = false;
            break;
          }
        }
      }
      if (!independent) {
        out.push_back(std::move(s));
        continue;
      }
      changed = true;
      int piece = 0;
      for (StmtPtr& inner : loop->body().stmts()) {
        auto body = ir::block();
        body->append(std::move(inner));
        auto newLoop = std::make_unique<For>(loop->var(), loop->lower(),
                                             loop->upper(), std::move(body),
                                             loop->step());
        newLoop->label = s->label.empty()
                             ? ""
                             : s->label + ".f" + std::to_string(piece++);
        out.push_back(std::move(newLoop));
      }
    }
    block.stmts() = std::move(out);  // stmts were moved out unconditionally
    return changed;
  };
  return rewriteBlocks(fn.body(), rewrite);
}

// ------------------------------------------------------------- LoopFusion

bool LoopFusion::run(ir::Function& fn) {
  (void)fn;
  auto rewrite = [](Block& block) {
    bool changed = false;
    std::vector<StmtPtr> out;
    out.reserve(block.stmts().size());
    for (StmtPtr& s : block.stmts()) {
      auto* loop = ir::dynCast<For>(*s);
      For* prev = out.empty() ? nullptr : ir::dynCast<For>(*out.back());
      if (loop == nullptr || prev == nullptr ||
          prev->lower() != loop->lower() || prev->upper() != loop->upper() ||
          prev->step() != loop->step()) {
        out.push_back(std::move(s));
        continue;
      }
      // Legality: the two bodies must be fully independent (no conflicts in
      // either direction) so interleaving iterations cannot change any
      // value.
      const ir::VarUsage a = ir::collectUsage(prev->body());
      const ir::VarUsage b = ir::collectUsage(loop->body());
      if (a.conflictsWith(b) || b.conflictsWith(a)) {
        out.push_back(std::move(s));
        continue;
      }
      // Renaming the second loop variable must not capture an inner loop
      // that already uses the first loop's name.
      if (loop->var() != prev->var()) {
        bool captures = false;
        const std::function<void(const Block&)> scan = [&](const Block& b) {
          for (const StmtPtr& inner : b.stmts()) {
            if (const auto* f = ir::dynCast<For>(*inner)) {
              if (f->var() == prev->var()) captures = true;
              scan(f->body());
            } else if (const auto* i = ir::dynCast<ir::If>(*inner)) {
              scan(i->thenBody());
              scan(i->elseBody());
            } else if (const auto* blk = ir::dynCast<Block>(*inner)) {
              scan(*blk);
            }
          }
        };
        scan(loop->body());
        if (captures) {
          out.push_back(std::move(s));
          continue;
        }
      }
      changed = true;
      // Rename the second loop's variable to the first's, then splice.
      if (loop->var() != prev->var()) {
        const std::map<std::string, std::string> renames = {
            {loop->var(), prev->var()}};
        for (const StmtPtr& inner : loop->body().stmts()) {
          ir::renameVars(*inner, renames);
        }
      }
      for (StmtPtr& inner : loop->body().stmts()) {
        prev->body().append(std::move(inner));
      }
    }
    block.stmts() = std::move(out);  // stmts were moved out unconditionally
    return changed;
  };
  return rewriteBlocks(fn.body(), rewrite);
}

// ----------------------------------------------------- IndexSetSplitting

namespace {

/// Matches `var CMP literal` or `literal CMP var`; returns the split point
/// S such that the condition is equivalent to (i < S) — i.e. iterations
/// below S take the then-branch. Returns false when the shape is
/// unsupported.
bool matchSplit(const ir::Expr& cond, const std::string& var,
                std::int64_t& splitPoint, bool& thenIsLow) {
  const auto* bin = ir::dynCast<ir::BinOp>(cond);
  if (bin == nullptr) return false;
  const auto* lhsVar = ir::dynCast<ir::VarRef>(bin->lhs());
  const auto* rhsLit = ir::dynCast<ir::IntLit>(bin->rhs());
  if (lhsVar == nullptr || rhsLit == nullptr || lhsVar->name() != var ||
      !lhsVar->indices().empty()) {
    return false;
  }
  const std::int64_t k = rhsLit->value();
  switch (bin->op()) {
    case ir::BinOpKind::Lt: splitPoint = k; thenIsLow = true; return true;
    case ir::BinOpKind::Le: splitPoint = k + 1; thenIsLow = true; return true;
    case ir::BinOpKind::Ge: splitPoint = k; thenIsLow = false; return true;
    case ir::BinOpKind::Gt: splitPoint = k + 1; thenIsLow = false; return true;
    default: return false;
  }
}

}  // namespace

bool IndexSetSplitting::run(ir::Function& fn) {
  (void)fn;
  auto rewrite = [](Block& block) {
    bool changed = false;
    std::vector<StmtPtr> out;
    out.reserve(block.stmts().size());
    for (StmtPtr& s : block.stmts()) {
      auto* loop = ir::dynCast<For>(*s);
      // Pattern: unit-step loop whose whole body is one If on the loop var.
      if (loop == nullptr || loop->step() != 1 || loop->body().size() != 1 ||
          loop->body().stmts()[0]->kind() != ir::StmtKind::If) {
        out.push_back(std::move(s));
        continue;
      }
      auto& branch = ir::cast<ir::If>(*loop->body().stmts()[0]);
      std::int64_t split = 0;
      bool thenIsLow = false;
      if (!matchSplit(branch.cond(), loop->var(), split, thenIsLow)) {
        out.push_back(std::move(s));
        continue;
      }
      const std::int64_t lo = loop->lower();
      const std::int64_t hi = loop->upper();
      const std::int64_t mid = std::clamp(split, lo, hi);
      changed = true;
      auto lowBody =
          thenIsLow ? branch.thenBody().cloneBlock() : branch.elseBody().cloneBlock();
      auto highBody =
          thenIsLow ? branch.elseBody().cloneBlock() : branch.thenBody().cloneBlock();
      if (mid > lo && !lowBody->empty()) {
        auto lowLoop = std::make_unique<For>(loop->var(), lo, mid,
                                             std::move(lowBody), 1);
        lowLoop->label = s->label.empty() ? "" : s->label + ".lo";
        out.push_back(std::move(lowLoop));
      }
      if (hi > mid && !highBody->empty()) {
        auto highLoop = std::make_unique<For>(loop->var(), mid, hi,
                                              std::move(highBody), 1);
        highLoop->label = s->label.empty() ? "" : s->label + ".hi";
        out.push_back(std::move(highLoop));
      }
    }
    block.stmts() = std::move(out);  // stmts were moved out unconditionally
    return changed;
  };
  return rewriteBlocks(fn.body(), rewrite);
}

}  // namespace argo::transform
