#include "transform/spm_alloc.h"

#include <algorithm>
#include <map>

#include "ir/dependence.h"

namespace argo::transform {

namespace {

void countExpr(const ir::Expr& expr, std::int64_t weight,
               std::map<std::string, std::int64_t>& counts) {
  switch (expr.kind()) {
    case ir::ExprKind::VarRef: {
      const auto& ref = ir::cast<ir::VarRef>(expr);
      counts[ref.name()] += weight;
      for (const ir::ExprPtr& idx : ref.indices()) {
        countExpr(*idx, weight, counts);
      }
      break;
    }
    case ir::ExprKind::BinOp: {
      const auto& bin = ir::cast<ir::BinOp>(expr);
      countExpr(bin.lhs(), weight, counts);
      countExpr(bin.rhs(), weight, counts);
      break;
    }
    case ir::ExprKind::UnOp:
      countExpr(ir::cast<ir::UnOp>(expr).operand(), weight, counts);
      break;
    case ir::ExprKind::Call:
      for (const ir::ExprPtr& a : ir::cast<ir::Call>(expr).args()) {
        countExpr(*a, weight, counts);
      }
      break;
    case ir::ExprKind::Select: {
      const auto& sel = ir::cast<ir::Select>(expr);
      countExpr(sel.cond(), weight, counts);
      // Worst case: either arm may execute; count both (sound upper bound).
      countExpr(sel.onTrue(), weight, counts);
      countExpr(sel.onFalse(), weight, counts);
      break;
    }
    default:
      break;
  }
}

void countStmt(const ir::Stmt& stmt, std::int64_t weight,
               std::map<std::string, std::int64_t>& counts) {
  switch (stmt.kind()) {
    case ir::StmtKind::Assign: {
      const auto& assign = ir::cast<ir::Assign>(stmt);
      countExpr(assign.rhs(), weight, counts);
      counts[assign.lhs().name()] += weight;
      for (const ir::ExprPtr& idx : assign.lhs().indices()) {
        countExpr(*idx, weight, counts);
      }
      break;
    }
    case ir::StmtKind::For: {
      const auto& loop = ir::cast<ir::For>(stmt);
      const std::int64_t trips = loop.tripCount();
      if (trips > 0) {
        for (const ir::StmtPtr& s : loop.body().stmts()) {
          countStmt(*s, weight * trips, counts);
        }
      }
      break;
    }
    case ir::StmtKind::If: {
      const auto& branch = ir::cast<ir::If>(stmt);
      countExpr(branch.cond(), weight, counts);
      for (const ir::StmtPtr& s : branch.thenBody().stmts()) {
        countStmt(*s, weight, counts);
      }
      for (const ir::StmtPtr& s : branch.elseBody().stmts()) {
        countStmt(*s, weight, counts);
      }
      break;
    }
    case ir::StmtKind::Block:
      for (const ir::StmtPtr& s : ir::cast<ir::Block>(stmt).stmts()) {
        countStmt(*s, weight, counts);
      }
      break;
  }
}

}  // namespace

std::map<std::string, std::int64_t> worstCaseAccessCounts(
    const ir::Function& fn) {
  std::map<std::string, std::int64_t> counts;
  for (const ir::StmtPtr& s : fn.body().stmts()) countStmt(*s, 1, counts);
  // Loop variables accumulate counts too; drop names that are not declared.
  for (auto it = counts.begin(); it != counts.end();) {
    if (fn.find(it->first) == nullptr) {
      it = counts.erase(it);
    } else {
      ++it;
    }
  }
  return counts;
}

bool ScratchpadAllocation::run(ir::Function& fn) {
  report_ = SpmReport{};
  const std::int64_t gain = sharedCost_ - spmCost_;
  if (gain <= 0 || capacityBytes_ <= 0) return false;

  const std::map<std::string, std::int64_t> counts = worstCaseAccessCounts(fn);

  // Which top-level statements touch each variable (single-node test).
  std::map<std::string, int> touchingNodes;
  std::map<std::string, bool> everWritten;
  for (const ir::StmtPtr& s : fn.body().stmts()) {
    const ir::VarUsage usage = ir::collectUsage(*s);
    std::set<std::string> touched = usage.reads;
    touched.insert(usage.writes.begin(), usage.writes.end());
    for (const std::string& v : touched) touchingNodes[v] += 1;
    for (const std::string& v : usage.writes) everWritten[v] = true;
  }

  struct Candidate {
    const ir::VarDecl* decl;
    std::int64_t benefit;
    std::int64_t bytes;
  };
  std::vector<Candidate> candidates;
  for (const ir::VarDecl& decl : fn.decls()) {
    if (decl.storage != ir::Storage::Shared) continue;
    if (decl.role == ir::VarRole::Input || decl.role == ir::VarRole::Output) {
      continue;  // external interface stays shared
    }
    const bool readOnly =
        decl.role == ir::VarRole::Const || !everWritten[decl.name];
    const bool singleNode = touchingNodes[decl.name] <= 1;
    if (!readOnly && !singleNode) continue;
    auto it = counts.find(decl.name);
    const std::int64_t accesses = it == counts.end() ? 0 : it->second;
    if (accesses == 0) continue;
    candidates.push_back(
        Candidate{&decl, accesses * gain, decl.type.byteSize()});
  }

  // Greedy by benefit density, deterministic tie-break by name.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              const double da = static_cast<double>(a.benefit) /
                                static_cast<double>(std::max<std::int64_t>(
                                    1, a.bytes));
              const double db = static_cast<double>(b.benefit) /
                                static_cast<double>(std::max<std::int64_t>(
                                    1, b.bytes));
              if (da != db) return da > db;
              return a.decl->name < b.decl->name;
            });

  std::int64_t remaining = capacityBytes_;
  std::vector<std::string> selected;
  for (const Candidate& c : candidates) {
    if (c.bytes > remaining) continue;
    remaining -= c.bytes;
    selected.push_back(c.decl->name);
    report_.bytesUsed += c.bytes;
    report_.estimatedSaving += c.benefit;
  }
  if (selected.empty()) return false;

  for (const std::string& name : selected) {
    fn.find(name)->storage = ir::Storage::Scratchpad;
    report_.demoted.push_back(name);
  }
  return true;
}

}  // namespace argo::transform
