// Loop transformations for predictability-oriented parallelism extraction.
//
// Paper Section III-C discusses transformations that "must be revisited in
// the context of performance predictability", naming index set splitting
// [Griebl/Feautrier/Lengauer] explicitly. This module implements:
//
//  * LoopUnroll        — full unrolling of short loops (removes loop
//                        overhead and enables folding; grows code size, a
//                        trade that is often *good* for WCET).
//  * LoopFission       — splits a parallel loop whose body statements are
//                        pairwise independent into one loop per statement
//                        (exposes more HTG nodes -> finer tasks).
//  * LoopFusion        — merges adjacent independent loops with identical
//                        iteration ranges (fewer tasks/loop overheads; the
//                        inverse granularity knob).
//  * IndexSetSplitting — rewrites  for i { if (i < K) A else B }  into
//                        for i in [lo,K) { A }; for i in [K,hi) { B },
//                        eliminating the per-iteration branch so the WCET
//                        path no longer takes max(A, B) every iteration.
//
// Every pass is semantics-preserving and only fires when its (conservative)
// legality conditions hold.
#pragma once

#include "transform/pass.h"

namespace argo::transform {

/// Fully unrolls loops whose trip count is <= `maxTrip`.
class LoopUnroll final : public Pass {
 public:
  explicit LoopUnroll(std::int64_t maxTrip = 4) : maxTrip_(maxTrip) {}
  [[nodiscard]] std::string name() const override { return "loop_unroll"; }
  bool run(ir::Function& fn) override;

 private:
  std::int64_t maxTrip_;
};

/// Partially unrolls unit-step loops by `factor`: the main loop advances
/// `factor` iterations per trip (body replicated with the loop variable
/// offset by 0..factor-1), a remainder loop covers the tail. Divides the
/// per-iteration LoopStep overhead by `factor` — a pure WCET win on cores
/// without dynamic branch prediction (Sec. III-B forbids predictors, so
/// back-edges stay expensive).
class PartialUnroll final : public Pass {
 public:
  explicit PartialUnroll(int factor = 4, std::int64_t minTrip = 16)
      : factor_(factor), minTrip_(minTrip) {}
  [[nodiscard]] std::string name() const override { return "partial_unroll"; }
  bool run(ir::Function& fn) override;

 private:
  int factor_;
  std::int64_t minTrip_;
};

/// Distributes parallel loops over their independent body statements.
class LoopFission final : public Pass {
 public:
  [[nodiscard]] std::string name() const override { return "loop_fission"; }
  bool run(ir::Function& fn) override;
};

/// Fuses adjacent independent loops with identical ranges.
class LoopFusion final : public Pass {
 public:
  [[nodiscard]] std::string name() const override { return "loop_fusion"; }
  bool run(ir::Function& fn) override;
};

/// Splits iteration ranges at affine conditions on the loop variable.
class IndexSetSplitting final : public Pass {
 public:
  [[nodiscard]] std::string name() const override {
    return "index_set_splitting";
  }
  bool run(ir::Function& fn) override;
};

}  // namespace argo::transform
