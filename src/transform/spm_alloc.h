// WCET-directed scratchpad memory (SPM) allocation.
//
// Paper Section III-B: "Scratchpad memories are preferred to caches because
// they enable more precise WCET estimation"; Section III-C cites
// "WCET-directed management of scratchpad memory" as the relevant class of
// sequential optimizations. This pass selects variables to demote from
// Shared to Scratchpad storage so that the total worst-case access saving
// is maximized under the SPM capacity:
//
//   benefit(v) = worstCaseAccesses(v) x (sharedAccessCycles - spmAccessCycles)
//
// solved greedily by benefit density (benefit/bytes) — the standard
// heuristic for the (NP-hard) knapsack formulation.
//
// Eligibility is deliberately conservative so the later mapping stays
// correct on any schedule:
//   * read-only data (Const role, or never-written variables) can be
//     replicated into every tile's SPM; always eligible;
//   * written variables are eligible only when every access occurs within a
//     single top-level statement (a single HTG node), which a static
//     schedule pins to one tile;
//   * Input and Output variables stay in shared memory (they are the
//     external interface).
#pragma once

#include <map>

#include "transform/pass.h"

namespace argo::transform {

/// Result of one allocation run, for reporting and the E5 benchmark.
struct SpmReport {
  std::vector<std::string> demoted;
  std::int64_t bytesUsed = 0;
  /// Static estimate of saved worst-case cycles per step.
  std::int64_t estimatedSaving = 0;
};

class ScratchpadAllocation final : public Pass {
 public:
  /// `capacityBytes`: SPM budget (per tile). `sharedCost`/`spmCost`: access
  /// cycle costs used to weigh benefits.
  ScratchpadAllocation(std::int64_t capacityBytes, std::int64_t sharedCost,
                       std::int64_t spmCost)
      : capacityBytes_(capacityBytes),
        sharedCost_(sharedCost),
        spmCost_(spmCost) {}

  [[nodiscard]] std::string name() const override { return "spm_alloc"; }
  bool run(ir::Function& fn) override;

  [[nodiscard]] const SpmReport& report() const noexcept { return report_; }

 private:
  std::int64_t capacityBytes_;
  std::int64_t sharedCost_;
  std::int64_t spmCost_;
  SpmReport report_;
};

/// Worst-case access counts per variable: every access weighted by the
/// product of enclosing loop trip counts (conditional accesses counted on
/// both arms' worst case). Exposed for tests and the allocator.
[[nodiscard]] std::map<std::string, std::int64_t> worstCaseAccessCounts(
    const ir::Function& fn);

}  // namespace argo::transform
