#include "transform/const_fold.h"

#include <cmath>
#include <optional>

namespace argo::transform {

namespace {

using ir::BinOpKind;
using ir::Expr;
using ir::ExprKind;
using ir::ExprPtr;

struct Lit {
  bool isFloat = false;
  double f = 0.0;
  std::int64_t i = 0;
  [[nodiscard]] double asFloat() const {
    return isFloat ? f : static_cast<double>(i);
  }
};

std::optional<Lit> asLiteral(const Expr& e) {
  if (const auto* i = ir::dynCast<ir::IntLit>(e)) return Lit{false, 0.0, i->value()};
  if (const auto* f = ir::dynCast<ir::FloatLit>(e)) return Lit{true, f->value(), 0};
  return std::nullopt;
}

ExprPtr makeLit(bool isFloat, double f, std::int64_t i) {
  if (isFloat) return std::make_unique<ir::FloatLit>(f);
  return std::make_unique<ir::IntLit>(i);
}

std::optional<ExprPtr> foldBin(BinOpKind op, const Lit& a, const Lit& b) {
  const bool flt = a.isFloat || b.isFloat;
  if (flt) {
    const double x = a.asFloat();
    const double y = b.asFloat();
    switch (op) {
      case BinOpKind::Add: return makeLit(true, x + y, 0);
      case BinOpKind::Sub: return makeLit(true, x - y, 0);
      case BinOpKind::Mul: return makeLit(true, x * y, 0);
      case BinOpKind::Div:
        if (y == 0.0) return std::nullopt;  // keep run-time semantics
        return makeLit(true, x / y, 0);
      case BinOpKind::Min: return makeLit(true, std::fmin(x, y), 0);
      case BinOpKind::Max: return makeLit(true, std::fmax(x, y), 0);
      default: return std::nullopt;
    }
  }
  const std::int64_t x = a.i;
  const std::int64_t y = b.i;
  switch (op) {
    case BinOpKind::Add: return makeLit(false, 0, x + y);
    case BinOpKind::Sub: return makeLit(false, 0, x - y);
    case BinOpKind::Mul: return makeLit(false, 0, x * y);
    case BinOpKind::Div:
      if (y == 0) return std::nullopt;
      return makeLit(false, 0, x / y);
    case BinOpKind::Mod:
      if (y == 0) return std::nullopt;
      return makeLit(false, 0, x % y);
    case BinOpKind::Min: return makeLit(false, 0, std::min(x, y));
    case BinOpKind::Max: return makeLit(false, 0, std::max(x, y));
    default: return std::nullopt;
  }
}

void foldStmt(ir::Stmt& stmt, bool& changed);

}  // namespace

ir::ExprPtr foldExpr(ir::ExprPtr expr, bool& changed) {
  switch (expr->kind()) {
    case ExprKind::VarRef: {
      auto& ref = static_cast<ir::VarRef&>(*expr);
      for (ExprPtr& idx : ref.indices()) idx = foldExpr(std::move(idx), changed);
      return expr;
    }
    case ExprKind::BinOp: {
      auto& bin = static_cast<ir::BinOp&>(*expr);
      ExprPtr lhs = foldExpr(bin.takeLhs(), changed);
      ExprPtr rhs = foldExpr(bin.takeRhs(), changed);
      const auto la = asLiteral(*lhs);
      const auto lb = asLiteral(*rhs);
      if (la && lb) {
        if (auto folded = foldBin(bin.op(), *la, *lb)) {
          changed = true;
          return std::move(*folded);
        }
      }
      // Reassociate (x +/- c1) +/- c2 into x +/- (c1 +/- c2) for integer
      // literals; this collapses the Scilab 1-based index adjustment
      // (i + 1) - 1 into plain i in combination with the identity rules.
      if (lb && !lb->isFloat &&
          (bin.op() == BinOpKind::Add || bin.op() == BinOpKind::Sub)) {
        if (auto* innerBin = lhs && lhs->kind() == ExprKind::BinOp
                                 ? static_cast<ir::BinOp*>(lhs.get())
                                 : nullptr;
            innerBin != nullptr && (innerBin->op() == BinOpKind::Add ||
                                    innerBin->op() == BinOpKind::Sub)) {
          const auto innerLit = asLiteral(innerBin->rhs());
          if (innerLit && !innerLit->isFloat) {
            const std::int64_t innerSigned =
                innerBin->op() == BinOpKind::Add ? innerLit->i : -innerLit->i;
            const std::int64_t outerSigned =
                bin.op() == BinOpKind::Add ? lb->i : -lb->i;
            const std::int64_t combined = innerSigned + outerSigned;
            ExprPtr base = innerBin->takeLhs();
            changed = true;
            if (combined == 0) return base;
            if (combined > 0) {
              return std::make_unique<ir::BinOp>(BinOpKind::Add,
                                                 std::move(base),
                                                 makeLit(false, 0, combined));
            }
            return std::make_unique<ir::BinOp>(BinOpKind::Sub, std::move(base),
                                               makeLit(false, 0, -combined));
          }
        }
      }
      // Additive/multiplicative identities on integer literals; these come
      // straight out of the Scilab 1-based index adjustment (i + 1 - 1).
      if (lb && !lb->isFloat) {
        if ((bin.op() == BinOpKind::Add || bin.op() == BinOpKind::Sub) &&
            lb->i == 0) {
          changed = true;
          return lhs;
        }
        if (bin.op() == BinOpKind::Mul && lb->i == 1) {
          changed = true;
          return lhs;
        }
      }
      if (la && !la->isFloat) {
        if (bin.op() == BinOpKind::Add && la->i == 0) {
          changed = true;
          return rhs;
        }
        if (bin.op() == BinOpKind::Mul && la->i == 1) {
          changed = true;
          return rhs;
        }
      }
      return std::make_unique<ir::BinOp>(bin.op(), std::move(lhs),
                                         std::move(rhs));
    }
    case ExprKind::UnOp: {
      auto& un = static_cast<ir::UnOp&>(*expr);
      ExprPtr operand = foldExpr(un.operand().clone(), changed);
      if (un.op() == ir::UnOpKind::Neg) {
        if (const auto lit = asLiteral(*operand)) {
          changed = true;
          return makeLit(lit->isFloat, -lit->f, -lit->i);
        }
      }
      return std::make_unique<ir::UnOp>(un.op(), std::move(operand));
    }
    case ExprKind::Call: {
      auto& call = static_cast<ir::Call&>(*expr);
      std::vector<ExprPtr> args;
      args.reserve(call.args().size());
      for (const ExprPtr& a : call.args()) {
        args.push_back(foldExpr(a->clone(), changed));
      }
      return std::make_unique<ir::Call>(call.callee(), std::move(args));
    }
    case ExprKind::Select: {
      auto& sel = static_cast<ir::Select&>(*expr);
      ExprPtr cond = foldExpr(sel.cond().clone(), changed);
      ExprPtr onTrue = foldExpr(sel.onTrue().clone(), changed);
      ExprPtr onFalse = foldExpr(sel.onFalse().clone(), changed);
      if (const auto* b = ir::dynCast<ir::BoolLit>(*cond)) {
        changed = true;
        return b->value() ? std::move(onTrue) : std::move(onFalse);
      }
      return std::make_unique<ir::Select>(std::move(cond), std::move(onTrue),
                                          std::move(onFalse));
    }
    default:
      return expr;
  }
}

namespace {

void foldStmt(ir::Stmt& stmt, bool& changed) {
  switch (stmt.kind()) {
    case ir::StmtKind::Assign: {
      auto& assign = ir::cast<ir::Assign>(stmt);
      for (ExprPtr& idx : assign.lhs().indices()) {
        idx = foldExpr(std::move(idx), changed);
      }
      assign.setRhs(foldExpr(assign.takeRhs(), changed));
      break;
    }
    case ir::StmtKind::For:
      for (const ir::StmtPtr& s : ir::cast<ir::For>(stmt).body().stmts()) {
        foldStmt(*s, changed);
      }
      break;
    case ir::StmtKind::If: {
      auto& branch = ir::cast<ir::If>(stmt);
      branch.setCond(foldExpr(branch.takeCond(), changed));
      for (const ir::StmtPtr& s : branch.thenBody().stmts()) {
        foldStmt(*s, changed);
      }
      for (const ir::StmtPtr& s : branch.elseBody().stmts()) {
        foldStmt(*s, changed);
      }
      break;
    }
    case ir::StmtKind::Block:
      for (const ir::StmtPtr& s : ir::cast<ir::Block>(stmt).stmts()) {
        foldStmt(*s, changed);
      }
      break;
  }
}

}  // namespace

bool ConstantFolding::run(ir::Function& fn) {
  bool changed = false;
  for (const ir::StmtPtr& s : fn.body().stmts()) foldStmt(*s, changed);
  return changed;
}

}  // namespace argo::transform
