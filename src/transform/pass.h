// Pass manager for predictability-enhancing program transformations.
//
// Paper Section II-B: the IR "is used as input by the GeCoS source-to-source
// transformation framework, which performs several predictability enhancing
// program transformations (scratchpad management for data, predictability
// oriented task parallelism extraction through loop transformations, etc.)".
//
// Passes mutate a Function in place and report whether they changed it.
// Every pass must be semantics-preserving; the test suite enforces this by
// interpreting original and transformed functions on random inputs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/function.h"
#include "support/diagnostics.h"

namespace argo::transform {

/// Base class of all transformation passes.
class Pass {
 public:
  virtual ~Pass() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Applies the pass; returns true when the function changed.
  virtual bool run(ir::Function& fn) = 0;
};

/// Runs a pipeline of passes and records what ran.
class PassManager {
 public:
  void add(std::unique_ptr<Pass> pass) { passes_.push_back(std::move(pass)); }

  /// Runs all passes in order; returns the names of passes that changed
  /// the function. Validates the IR after each changing pass and throws
  /// support::ToolchainError if a pass broke it.
  std::vector<std::string> run(ir::Function& fn);

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

}  // namespace argo::transform
