// Constant folding.
//
// Folds literal arithmetic produced by the front ends (Scilab index
// adjustments, block parameter expressions). Purely local rewriting;
// reduces both the WCET bound and the executed cost identically.
#pragma once

#include "transform/pass.h"

namespace argo::transform {

class ConstantFolding final : public Pass {
 public:
  [[nodiscard]] std::string name() const override { return "const_fold"; }
  bool run(ir::Function& fn) override;
};

/// Folds one expression tree; returns the (possibly new) root and sets
/// `changed` when anything folded.
[[nodiscard]] ir::ExprPtr foldExpr(ir::ExprPtr expr, bool& changed);

}  // namespace argo::transform
