#include "transform/pass.h"

#include "support/strings.h"

namespace argo::transform {

std::vector<std::string> PassManager::run(ir::Function& fn) {
  std::vector<std::string> changed;
  for (const std::unique_ptr<Pass>& pass : passes_) {
    if (pass->run(fn)) {
      const std::vector<std::string> problems = ir::validate(fn);
      if (!problems.empty()) {
        throw support::ToolchainError(
            "pass '" + pass->name() + "' produced invalid IR: " +
            support::join(problems, "; "));
      }
      changed.push_back(pass->name());
    }
  }
  return changed;
}

}  // namespace argo::transform
