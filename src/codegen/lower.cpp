#include "codegen/lower.h"

#include <cstdint>
#include <cstdio>

#include "support/diagnostics.h"

// GCC 12's optimizer emits a -Wrestrict false positive (GCC PR105329) for
// some chained std::string operator+ expressions, of which this file is
// full. No memcpy/restrict code exists in this TU; silence the bogus
// diagnostic rather than contorting every concatenation.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

namespace argo::codegen {

using support::ToolchainError;

namespace {

/// Widens a lowered value to the evaluator's double view (Scalar::asFloat).
std::string asFloat(const LoweredExpr& e) {
  return e.isFloat ? e.text : "(double)" + e.text;
}

/// Truncates a lowered value to the evaluator's int64 view (Scalar::asInt).
std::string asInt(const LoweredExpr& e) {
  return e.isFloat ? "(int64_t)" + e.text : e.text;
}

/// C truthiness test matching Scalar::truthy (0.0 / 0 are false).
std::string truthy(const LoweredExpr& e) {
  return "(" + e.text + (e.isFloat ? " != 0.0)" : " != 0)");
}

}  // namespace

std::string sanitizeIdent(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) return "v" + out;
  return out;
}

std::string floatLiteral(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

Lowerer::Lowerer(const ir::Function& fn) : fn_(fn) {
  // Deterministic, collision-free accessor names in declaration order.
  std::set<std::string> taken;
  for (const ir::VarDecl& decl : fn.decls()) {
    std::string base = "A_" + sanitizeIdent(decl.name);
    std::string candidate = base;
    for (int k = 2; taken.contains(candidate); ++k) {
      candidate = base + "_" + std::to_string(k);
    }
    taken.insert(candidate);
    cNames_.emplace(decl.name, std::move(candidate));
  }
}

const std::string& Lowerer::cName(const std::string& irName) const {
  auto it = cNames_.find(irName);
  if (it == cNames_.end()) {
    throw ToolchainError("codegen: reference to undeclared variable '" +
                         irName + "'");
  }
  return it->second;
}

std::string Lowerer::flatIndexText(const ir::VarRef& ref,
                                   const ir::Type& type) {
  if (ref.indices().empty()) return "0";
  const auto& dims = type.dims();
  if (ref.indices().size() != dims.size()) {
    throw ToolchainError("codegen: rank mismatch on '" + ref.name() + "'");
  }
  // Row-major flattening, every index truncated to int64 exactly like the
  // evaluator's flatIndex (eval(idx).asInt()).
  std::string flat;
  for (std::size_t d = 0; d < dims.size(); ++d) {
    const std::string idx = asInt(lowerExpr(*ref.indices()[d]));
    if (d == 0) {
      flat = idx;
    } else {
      flat = "(" + flat + " * " + std::to_string(dims[d]) + " + " + idx + ")";
    }
  }
  return flat;
}

LoweredExpr Lowerer::lowerExpr(const ir::Expr& expr) {
  using ir::BinOpKind;
  using ir::ExprKind;
  using ir::UnOpKind;
  switch (expr.kind()) {
    case ExprKind::IntLit: {
      const auto v = ir::cast<ir::IntLit>(expr).value();
      return {"((int64_t)" + std::to_string(v) + ")", false};
    }
    case ExprKind::FloatLit:
      return {floatLiteral(ir::cast<ir::FloatLit>(expr).value()), true};
    case ExprKind::BoolLit:
      return {ir::cast<ir::BoolLit>(expr).value() ? "((int64_t)1)"
                                                  : "((int64_t)0)",
              false};
    case ExprKind::VarRef: {
      const auto& ref = ir::cast<ir::VarRef>(expr);
      if (loopVars_.contains(ref.name())) {
        if (!ref.indices().empty()) {
          throw ToolchainError("codegen: indexed loop variable '" +
                               ref.name() + "'");
        }
        return {"L_" + sanitizeIdent(ref.name()), false};
      }
      const ir::VarDecl& decl = fn_.lookup(ref.name());
      const std::string elem =
          cName(ref.name()) + "[" + flatIndexText(ref, decl.type) + "]";
      if (decl.type.kind() == ir::ScalarKind::Float64) return {elem, true};
      // Bool / Int32 loads widen to the evaluator's int64 immediately.
      return {"(int64_t)" + elem, false};
    }
    case ExprKind::BinOp: {
      const auto& bin = ir::cast<ir::BinOp>(expr);
      // Short-circuit logical operators yield int 0/1, like Scalar::ofBool.
      if (bin.op() == BinOpKind::And || bin.op() == BinOpKind::Or) {
        const LoweredExpr a = lowerExpr(bin.lhs());
        const LoweredExpr b = lowerExpr(bin.rhs());
        const char* op = bin.op() == BinOpKind::And ? " && " : " || ";
        return {"((int64_t)(" + truthy(a) + op + truthy(b) + "))", false};
      }
      const LoweredExpr a = lowerExpr(bin.lhs());
      const LoweredExpr b = lowerExpr(bin.rhs());
      // The evaluator compares every pair as double (Scalar::asFloat).
      if (ir::isComparison(bin.op())) {
        const char* op = "";
        switch (bin.op()) {
          case BinOpKind::Lt: op = " < "; break;
          case BinOpKind::Le: op = " <= "; break;
          case BinOpKind::Gt: op = " > "; break;
          case BinOpKind::Ge: op = " >= "; break;
          case BinOpKind::Eq: op = " == "; break;
          case BinOpKind::Ne: op = " != "; break;
          default: break;
        }
        return {"((int64_t)(" + asFloat(a) + op + asFloat(b) + "))", false};
      }
      const bool flt = a.isFloat || b.isFloat;
      if (flt) {
        const std::string x = asFloat(a);
        const std::string y = asFloat(b);
        switch (bin.op()) {
          case BinOpKind::Add: return {"(" + x + " + " + y + ")", true};
          case BinOpKind::Sub: return {"(" + x + " - " + y + ")", true};
          case BinOpKind::Mul: return {"(" + x + " * " + y + ")", true};
          case BinOpKind::Div: return {"(" + x + " / " + y + ")", true};
          case BinOpKind::Mod: return {"fmod(" + x + ", " + y + ")", true};
          case BinOpKind::Min: return {"fmin(" + x + ", " + y + ")", true};
          case BinOpKind::Max: return {"fmax(" + x + ", " + y + ")", true};
          default: break;
        }
      } else {
        const std::string x = a.text;
        const std::string y = b.text;
        switch (bin.op()) {
          case BinOpKind::Add: return {"(" + x + " + " + y + ")", false};
          case BinOpKind::Sub: return {"(" + x + " - " + y + ")", false};
          case BinOpKind::Mul: return {"(" + x + " * " + y + ")", false};
          case BinOpKind::Div:
            return {"argo_idiv(" + x + ", " + y + ")", false};
          case BinOpKind::Mod:
            return {"argo_imod(" + x + ", " + y + ")", false};
          case BinOpKind::Min:
            return {"argo_imin(" + x + ", " + y + ")", false};
          case BinOpKind::Max:
            return {"argo_imax(" + x + ", " + y + ")", false};
          default: break;
        }
      }
      throw ToolchainError("codegen: unhandled binary operator");
    }
    case ExprKind::UnOp: {
      const auto& un = ir::cast<ir::UnOp>(expr);
      const LoweredExpr a = lowerExpr(un.operand());
      switch (un.op()) {
        case UnOpKind::Neg:
          return {"(-" + a.text + ")", a.isFloat};
        case UnOpKind::Not:
          return {"((int64_t)!" + truthy(a) + ")", false};
        case UnOpKind::Abs:
          return a.isFloat
                     ? LoweredExpr{"fabs(" + a.text + ")", true}
                     : LoweredExpr{"argo_iabs(" + a.text + ")", false};
        case UnOpKind::Sqrt: return {"sqrt(" + asFloat(a) + ")", true};
        case UnOpKind::Exp: return {"exp(" + asFloat(a) + ")", true};
        case UnOpKind::Log: return {"log(" + asFloat(a) + ")", true};
        case UnOpKind::Sin: return {"sin(" + asFloat(a) + ")", true};
        case UnOpKind::Cos: return {"cos(" + asFloat(a) + ")", true};
        case UnOpKind::Tan: return {"tan(" + asFloat(a) + ")", true};
        case UnOpKind::Atan: return {"atan(" + asFloat(a) + ")", true};
        case UnOpKind::Floor: return {"floor(" + asFloat(a) + ")", true};
        case UnOpKind::ToFloat: return {asFloat(a), true};
        case UnOpKind::ToInt: return {asInt(a), false};
      }
      throw ToolchainError("codegen: unhandled unary operator");
    }
    case ExprKind::Call: {
      const auto& call = ir::cast<ir::Call>(expr);
      const std::string& name = call.callee();
      const bool known = (name == "atan2" || name == "pow" ||
                          name == "hypot" || name == "fmod") &&
                         call.args().size() == 2;
      if (!known) {
        throw ToolchainError("codegen: unknown intrinsic '" + name +
                             "' with " + std::to_string(call.args().size()) +
                             " args");
      }
      const std::string a = asFloat(lowerExpr(*call.args()[0]));
      const std::string b = asFloat(lowerExpr(*call.args()[1]));
      return {name + "(" + a + ", " + b + ")", true};
    }
    case ExprKind::Select: {
      const auto& sel = ir::cast<ir::Select>(expr);
      const LoweredExpr c = lowerExpr(sel.cond());
      const LoweredExpr t = lowerExpr(sel.onTrue());
      const LoweredExpr f = lowerExpr(sel.onFalse());
      // Same-typed arms keep their type. Mixed arms promote to double: the
      // evaluator returns the chosen arm's Scalar, and every downstream
      // consumption (asFloat / asInt) observes the same value either way
      // for the magnitudes validated programs produce (|i| < 2^53).
      if (t.isFloat == f.isFloat) {
        return {"(" + truthy(c) + " ? " + t.text + " : " + f.text + ")",
                t.isFloat};
      }
      return {"(" + truthy(c) + " ? " + asFloat(t) + " : " + asFloat(f) + ")",
              true};
    }
  }
  throw ToolchainError("codegen: unhandled expression kind");
}

std::string Lowerer::storeText(const ir::VarRef& lhs, const LoweredExpr& rhs) {
  const ir::VarDecl& decl = fn_.lookup(lhs.name());
  const std::string elem =
      cName(lhs.name()) + "[" + flatIndexText(lhs, decl.type) + "]";
  switch (decl.type.kind()) {
    case ir::ScalarKind::Float64:
      return elem + " = " + asFloat(rhs) + ";";
    case ir::ScalarKind::Int32:
      return elem + " = (int32_t)" + asInt(rhs) + ";";
    case ir::ScalarKind::Bool:
      return elem + " = (signed char)" + asInt(rhs) + ";";
  }
  throw ToolchainError("codegen: unhandled scalar kind");
}

std::string Lowerer::lowerStmt(const ir::Stmt& stmt, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::string out;
  if (!stmt.label.empty()) out += pad + "// " + stmt.label + "\n";
  switch (stmt.kind()) {
    case ir::StmtKind::Assign: {
      const auto& assign = ir::cast<ir::Assign>(stmt);
      // A literal store that the emitted C would silently narrow is a
      // program error, not a codegen concern — diagnose it here so the
      // emission never diverges from the evaluator (which keeps the full
      // int64 value).
      if (assign.rhs().kind() == ir::ExprKind::IntLit) {
        const auto literal = ir::cast<ir::IntLit>(assign.rhs()).value();
        const ir::VarDecl& decl = fn_.lookup(assign.lhs().name());
        const bool narrows =
            (decl.type.kind() == ir::ScalarKind::Int32 &&
             (literal < INT32_MIN || literal > INT32_MAX)) ||
            (decl.type.kind() == ir::ScalarKind::Bool &&
             (literal < -128 || literal > 127));
        if (narrows) {
          throw ToolchainError(
              "codegen: literal " + std::to_string(literal) + " stored to '" +
              assign.lhs().name() +
              "' exceeds the declared " +
              (decl.type.kind() == ir::ScalarKind::Int32 ? "int32" : "bool") +
              " width (the emitted region narrows stores; see "
              "docs/CODEGEN.md)");
        }
      }
      const LoweredExpr rhs = lowerExpr(assign.rhs());
      out += pad + storeText(assign.lhs(), rhs) + "\n";
      break;
    }
    case ir::StmtKind::For: {
      const auto& loop = ir::cast<ir::For>(stmt);
      if (loopVars_.contains(loop.var())) {
        throw ToolchainError("codegen: nested reuse of loop variable '" +
                             loop.var() + "'");
      }
      const std::string v = "L_" + sanitizeIdent(loop.var());
      out += pad + "for (int64_t " + v + " = " + std::to_string(loop.lower()) +
             "; " + v + " < " + std::to_string(loop.upper()) + "; " + v +
             " += " + std::to_string(loop.step()) + ") {\n";
      loopVars_.insert(loop.var());
      for (const ir::StmtPtr& s : loop.body().stmts()) {
        out += lowerStmt(*s, indent + 1);
      }
      loopVars_.erase(loop.var());
      out += pad + "}\n";
      break;
    }
    case ir::StmtKind::If: {
      const auto& branch = ir::cast<ir::If>(stmt);
      out += pad + "if " + truthy(lowerExpr(branch.cond())) + " {\n";
      for (const ir::StmtPtr& s : branch.thenBody().stmts()) {
        out += lowerStmt(*s, indent + 1);
      }
      if (!branch.elseBody().empty()) {
        out += pad + "} else {\n";
        for (const ir::StmtPtr& s : branch.elseBody().stmts()) {
          out += lowerStmt(*s, indent + 1);
        }
      }
      out += pad + "}\n";
      break;
    }
    case ir::StmtKind::Block: {
      out += pad + "{\n";
      for (const ir::StmtPtr& s : ir::cast<ir::Block>(stmt).stmts()) {
        out += lowerStmt(*s, indent + 1);
      }
      out += pad + "}\n";
      break;
    }
  }
  return out;
}

}  // namespace argo::codegen
