// C code-generation backend: lowers a scheduled par::ParallelProgram into
// compilable C — the final "generate parallel C code" step of the paper's
// tool-chain (Section II-C), which the pipeline previously stopped short
// of at sim/.
//
// Emitted file set (emitProgram):
//
//   argo_rt.h   — header-only runtime: event channels for the inter-tile
//                 dependence edges of the parallel program, slot/barrier
//                 primitives for the static dispatch table, trap-checked
//                 integer helpers. See docs/CODEGEN.md for the contract.
//   program.h   — the memory map as C: one byte region per memory of the
//                 adl::Platform (shared memory + one SPM per tile), an
//                 A_<name> accessor macro per variable at the exact
//                 address par::buildParallelProgram assigned, task
//                 prototypes and slot-table externs.
//   tile<t>.c   — one translation unit per tile that received work: one
//                 function per scheduled task (the task's IR lowered by
//                 codegen::Lowerer) plus the tile's slot table in
//                 schedule order, each slot carrying its Wait/Signal
//                 event lists.
//   main.c      — the harness: defines the regions, embeds the recorded
//                 input trace and the constant tables, runs the dispatch
//                 (ExecMode::Sequential merges all tiles' slots by
//                 scheduled start time into one in-order replay;
//                 ExecMode::Threads spawns one pthread per tile, each
//                 walking its own table), and prints every Output
//                 variable after each step in the canonical text format
//                 below.
//
// Canonical output format (the differential-test oracle): per step a
// "-- step K" line, then one "name = value" (scalar) or "name[i] = value"
// (array element) line per Output element in declaration order; doubles
// print as %a hexfloats, ints as %lld. canonicalOutputs()/
// referenceOutputs() render the same bytes from an ir::Evaluator run, so
// `cc emitted && ./prog` can be compared byte-for-byte against the
// interpreter.
//
// Determinism: emitProgram is a pure function of (program, platform,
// constants, trace) — no wall clock, no iteration over unordered
// containers — so the emitted sources are byte-identical across runs and
// across every toolchain thread-count knob (pinned by tests/codegen_test).
#pragma once

#include <string>
#include <vector>

#include "adl/platform.h"
#include "ir/evaluator.h"
#include "par/parallel_program.h"

namespace argo::codegen {

/// How the emitted harness executes the scheduled slots.
enum class ExecMode {
  /// One process, one thread: the slots of every tile are merged into a
  /// single time-triggered dispatch order and replayed in-order (the
  /// original differential-replay harness). A wait on an unposted event
  /// traps immediately (exit 3).
  Sequential,
  /// True parallel execution: main.c spawns one pthread per tile that
  /// received work, each walking its own per-tile dispatch table. Event
  /// channels become condvar waits under a global mutex, the per-step
  /// rendezvous is a counted reusable barrier, and a watchdog
  /// (ARGO_WATCHDOG_NS, default 10 s) turns a deadlocked wait into a
  /// loud exit 3. Build with -pthread (docs/CODEGEN.md
  /// "Execution modes").
  Threads,
};

/// Emission options (beyond the program/platform/constants/trace inputs).
struct EmitOptions {
  ExecMode mode = ExecMode::Sequential;
  /// Emit per-slot runtime checks of the schedule's start/finish cycles
  /// against a monotonic step-relative clock: a slot whose start or
  /// finish exceeds cycles * ARGO_NS_PER_CYCLE + ARGO_ASSERT_SLACK_NS
  /// (both env-overridable) exits 4 — the WCET bound checked by
  /// execution, not only by simulation.
  bool runtimeAsserts = false;
};

/// One emitted source file.
struct SourceFile {
  std::string name;      ///< File name within the emission directory.
  std::string contents;  ///< Complete file text.
};

/// Recorded inputs the harness replays: one environment per synchronous
/// step. Only Input-role variables are read; every Input of the function
/// must be present in every step (same rule as ir::Evaluator::run).
struct InputTrace {
  std::vector<ir::Environment> steps;
};

/// A complete emission.
struct Emission {
  std::vector<SourceFile> files;
  /// Names of the .c translation units in files, in link order — what a
  /// build driver compiles (`cc -std=c11 <cUnits> -lm`).
  std::vector<std::string> cUnits;

  [[nodiscard]] const SourceFile& file(const std::string& name) const;
};

/// Lowers `program` to C. Throws support::ToolchainError when the trace
/// is empty or misses an input, a constant or trace value exceeds its
/// declared element width, or the program uses a construct that cannot
/// be lowered (unknown intrinsic, rank mismatch). Runtime divergences
/// from the evaluator's error behaviour — notably the absent per-access
/// index range check — are documented in docs/CODEGEN.md.
[[nodiscard]] Emission emitProgram(const par::ParallelProgram& program,
                                   const adl::Platform& platform,
                                   const ir::Environment& constants,
                                   const InputTrace& trace,
                                   const EmitOptions& options = {});

/// The verbatim text of the emitted argo_rt.h runtime header (exposed so
/// the runtime-primitive tests can compile it standalone).
[[nodiscard]] const char* runtimeHeader() noexcept;

/// Writes every file of `emission` into directory `dir` (created,
/// including parents, when absent). Existing files are overwritten.
void writeSources(const std::string& dir, const Emission& emission);

/// Renders one step's outputs of `env` in the canonical text format.
[[nodiscard]] std::string canonicalOutputs(const ir::Function& fn,
                                           const ir::Environment& env,
                                           int step);

/// The oracle: runs ir::Evaluator over the trace (states persist across
/// steps, exactly like the emitted harness) and returns the concatenated
/// canonical output text the emitted program must match byte-for-byte.
[[nodiscard]] std::string referenceOutputs(const ir::Function& fn,
                                           const ir::Environment& constants,
                                           const InputTrace& trace);

}  // namespace argo::codegen
