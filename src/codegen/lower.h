// Lowering of ARGO IR statements and expressions to C.
//
// The emitted C must print outputs byte-for-byte equal to ir::Evaluator on
// the same inputs (the differential-test oracle, docs/CODEGEN.md), so the
// lowering mirrors the evaluator's scalar model exactly rather than the
// declared IR types:
//
//  * a transient value is either a double or an int64_t (the evaluator's
//    Scalar); Bool and Int32 reads widen to int64_t immediately;
//  * mixed int/float arithmetic promotes to double, comparisons always
//    compare as double, logical operators short-circuit and yield int;
//  * stores narrow to the declared element width (double / int32_t /
//    signed char) — the one place the C code is narrower than the
//    evaluator, see the width caveat in docs/CODEGEN.md;
//  * float literals are emitted as C99 hexfloats (%a), which round-trip
//    exactly, so the C compiler sees the same double the evaluator holds.
//
// Variables are accessed through the A_<name> accessor macros emitted in
// program.h (codegen.h); loop variables become block-local int64_t
// variables named L_<name>.
#pragma once

#include <map>
#include <set>
#include <string>

#include "ir/function.h"

namespace argo::codegen {

/// C identifier for IR variable `name` ("A_" + sanitized name). Collisions
/// after sanitization are resolved per-function by cNameTable().
[[nodiscard]] std::string sanitizeIdent(const std::string& name);

/// One lowered expression: C text plus its evaluator-model type.
struct LoweredExpr {
  std::string text;
  bool isFloat = false;
};

/// Lowers statements/expressions of one function. The instance tracks the
/// active loop variables the same way the evaluator does, so VarRefs
/// resolve identically.
class Lowerer {
 public:
  explicit Lowerer(const ir::Function& fn);

  /// Lowers one statement subtree to C source at `indent` (2 spaces per
  /// level). Throws support::ToolchainError on constructs the evaluator
  /// would reject too (unknown intrinsics, rank mismatches).
  [[nodiscard]] std::string lowerStmt(const ir::Stmt& stmt, int indent);

  /// Lowers one expression. Exposed for the lowering unit tests.
  [[nodiscard]] LoweredExpr lowerExpr(const ir::Expr& expr);

  /// The accessor-macro name of a declared variable (A_<name>, collision
  /// free within the function).
  [[nodiscard]] const std::string& cName(const std::string& irName) const;

 private:
  [[nodiscard]] std::string flatIndexText(const ir::VarRef& ref,
                                          const ir::Type& type);
  [[nodiscard]] std::string storeText(const ir::VarRef& lhs,
                                      const LoweredExpr& rhs);

  const ir::Function& fn_;
  std::map<std::string, std::string> cNames_;  // IR name -> A_<name>
  std::set<std::string> loopVars_;
};

/// Formats a double as a C99 hexfloat literal (exact round-trip).
[[nodiscard]] std::string floatLiteral(double v);

}  // namespace argo::codegen
