// Code-level WCET analysis.
//
// Two engines over the same timing model:
//
//  * SchemaAnalyzer — timing schema on the structured IR:
//      wcet(s1; s2)      = wcet(s1) + wcet(s2)
//      wcet(if c A B)    = cost(c) + branch + max(wcet(A), wcet(B))
//      wcet(for)         = trip * (loopstep + wcet(body)) + branch
//    Exact for this IR class (structured, constant bounds).
//
//  * CfgAnalyzer — IPET-style longest path on the hierarchical CFG
//    (ir/cfg.h), innermost loops collapsed first. On structured programs
//    the two engines must agree; the test suite uses that as a
//    cross-check of both implementations (what aiT calls "independent
//    verification paths").
//
// Both charge every operation and memory access exactly the way the
// reference interpreter meters them, but over the worst-case path: both
// arms of a conditional contribute max(), short-circuit operators are
// charged as if fully evaluated. This makes the bound sound by
// construction: bound >= any metered execution.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ir/cfg.h"
#include "wcet/timing_model.h"

namespace argo::wcet {

/// Per-storage worst-case access counters.
struct AccessCounts {
  std::int64_t reads[3]{};
  std::int64_t writes[3]{};

  [[nodiscard]] std::int64_t reads_of(ir::Storage s) const noexcept {
    return reads[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] std::int64_t writes_of(ir::Storage s) const noexcept {
    return writes[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] std::int64_t sharedTotal() const noexcept {
    return reads_of(ir::Storage::Shared) + writes_of(ir::Storage::Shared);
  }

  AccessCounts& operator+=(const AccessCounts& other) noexcept;
  AccessCounts& operator*=(std::int64_t factor) noexcept;
  [[nodiscard]] static AccessCounts max(const AccessCounts& a,
                                        const AccessCounts& b) noexcept;
};

/// WCET of one code fragment.
struct WcetResult {
  Cycles cycles = 0;           ///< Total worst-case cycles (uncontended).
  Cycles computeCycles = 0;    ///< Operation cycles.
  Cycles memoryCycles = 0;     ///< Memory access cycles.
  ir::OpCounts ops;            ///< Worst-case operation counts.
  AccessCounts accesses;       ///< Worst-case access counts per storage.

  WcetResult& operator+=(const WcetResult& other) noexcept;
  WcetResult& operator*=(std::int64_t factor) noexcept;
  /// Worst-arm merge: max cycles and per-counter max (sound since counters
  /// only ever multiply access *delays* upward in later stages).
  [[nodiscard]] static WcetResult max(const WcetResult& a,
                                      const WcetResult& b) noexcept;
};

/// Timing-schema engine.
class SchemaAnalyzer {
 public:
  SchemaAnalyzer(const ir::Function& fn, const TimingModel& model)
      : fn_(fn), model_(model) {}

  [[nodiscard]] WcetResult analyzeStmt(const ir::Stmt& stmt) const;
  [[nodiscard]] WcetResult analyzeBlock(const ir::Block& block) const;
  [[nodiscard]] WcetResult analyzeFunction() const {
    return analyzeBlock(fn_.body());
  }
  [[nodiscard]] WcetResult analyzeExpr(const ir::Expr& expr) const;

 private:
  [[nodiscard]] WcetResult analyzeRef(const ir::VarRef& ref,
                                      bool isWrite) const;

  const ir::Function& fn_;
  const TimingModel& model_;
};

/// IPET-style CFG engine (cycles only; counters come from the schema
/// engine). Agrees with SchemaAnalyzer on all structured programs.
class CfgAnalyzer {
 public:
  CfgAnalyzer(const ir::Function& fn, const TimingModel& model)
      : fn_(fn), model_(model) {}

  [[nodiscard]] Cycles analyzeBlock(const ir::Block& block) const;
  [[nodiscard]] Cycles analyzeFunction() const {
    return analyzeBlock(fn_.body());
  }

 private:
  [[nodiscard]] Cycles longestPath(const ir::Cfg& cfg) const;
  [[nodiscard]] Cycles nodeCost(const ir::CfgNode& node) const;

  const ir::Function& fn_;
  const TimingModel& model_;
};

/// Static loop-bound report (paper: loop bounds must be known; here they
/// are structural, the report makes them visible to the user interface).
struct LoopBound {
  std::string var;
  std::int64_t tripCount = 0;
  int depth = 0;
};

[[nodiscard]] std::vector<LoopBound> collectLoopBounds(const ir::Block& block);

}  // namespace argo::wcet
