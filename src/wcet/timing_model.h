// Per-core timing model derived from the ADL.
//
// Code-level WCET analysis (paper Section II-D) "calculates the isolated
// WCET of code fragments on one core, regardless of the code fragments
// assigned to the other cores. This stage ignores the cost of resource
// contentions" — so shared-memory accesses are priced at their *uncontended*
// cost here; the system-level stage (src/syswcet) adds interference.
#pragma once

#include "adl/platform.h"
#include "ir/cost.h"
#include "ir/function.h"

namespace argo::wcet {

using adl::Cycles;

/// Prices operations and memory accesses for one core of one platform.
class TimingModel {
 public:
  /// `sharedAccessCycles` is the uncontended shared-memory access cost from
  /// this core's tile (Platform::sharedAccessBase).
  TimingModel(const adl::CoreModel& core, Cycles sharedAccessCycles)
      : core_(core), sharedAccessCycles_(sharedAccessCycles) {}

  /// Builds the model for tile `tile` of `platform`.
  [[nodiscard]] static TimingModel forTile(const adl::Platform& platform,
                                           int tile) {
    return TimingModel(platform.tile(tile).core,
                       platform.sharedAccessBase(tile));
  }

  [[nodiscard]] Cycles opCost(ir::OpClass op) const noexcept {
    return core_.cyclesFor(op);
  }

  [[nodiscard]] Cycles accessCost(ir::Storage storage) const noexcept {
    switch (storage) {
      case ir::Storage::Local: return core_.localAccessCycles;
      case ir::Storage::Scratchpad: return core_.spmAccessCycles;
      case ir::Storage::Shared: return sharedAccessCycles_;
    }
    return 0;
  }

  [[nodiscard]] const adl::CoreModel& core() const noexcept { return core_; }
  [[nodiscard]] Cycles sharedAccessCycles() const noexcept {
    return sharedAccessCycles_;
  }

 private:
  adl::CoreModel core_;
  Cycles sharedAccessCycles_;
};

}  // namespace argo::wcet
