#include "wcet/analyzer.h"

#include <algorithm>
#include <limits>

#include "support/diagnostics.h"

namespace argo::wcet {

using ir::OpClass;
using support::ToolchainError;

AccessCounts& AccessCounts::operator+=(const AccessCounts& other) noexcept {
  for (std::size_t i = 0; i < 3; ++i) {
    reads[i] += other.reads[i];
    writes[i] += other.writes[i];
  }
  return *this;
}

AccessCounts& AccessCounts::operator*=(std::int64_t factor) noexcept {
  for (std::size_t i = 0; i < 3; ++i) {
    reads[i] *= factor;
    writes[i] *= factor;
  }
  return *this;
}

AccessCounts AccessCounts::max(const AccessCounts& a,
                               const AccessCounts& b) noexcept {
  AccessCounts out;
  for (std::size_t i = 0; i < 3; ++i) {
    out.reads[i] = std::max(a.reads[i], b.reads[i]);
    out.writes[i] = std::max(a.writes[i], b.writes[i]);
  }
  return out;
}

WcetResult& WcetResult::operator+=(const WcetResult& other) noexcept {
  cycles += other.cycles;
  computeCycles += other.computeCycles;
  memoryCycles += other.memoryCycles;
  ops += other.ops;
  accesses += other.accesses;
  return *this;
}

WcetResult& WcetResult::operator*=(std::int64_t factor) noexcept {
  cycles *= factor;
  computeCycles *= factor;
  memoryCycles *= factor;
  ops *= factor;
  accesses *= factor;
  return *this;
}

WcetResult WcetResult::max(const WcetResult& a, const WcetResult& b) noexcept {
  WcetResult out;
  out.cycles = std::max(a.cycles, b.cycles);
  out.computeCycles = std::max(a.computeCycles, b.computeCycles);
  out.memoryCycles = std::max(a.memoryCycles, b.memoryCycles);
  out.ops = ir::OpCounts::max(a.ops, b.ops);
  out.accesses = AccessCounts::max(a.accesses, b.accesses);
  return out;
}

namespace {

void chargeOp(WcetResult& r, OpClass op, const TimingModel& model) {
  r.ops[op] += 1;
  const Cycles c = model.opCost(op);
  r.computeCycles += c;
  r.cycles += c;
}

/// Operand kinds (int vs float) are not tracked by the analyzer, but the
/// interpreter meters the class the run-time operands actually have. To
/// keep the bound sound regardless, charge the dearer of the two classes
/// the operator can map to (attributed to the float class in the counters).
void chargeOpEither(WcetResult& r, OpClass intClass, OpClass floatClass,
                    const TimingModel& model) {
  const Cycles c = std::max(model.opCost(intClass), model.opCost(floatClass));
  r.ops[floatClass] += 1;
  r.computeCycles += c;
  r.cycles += c;
}

void chargeAccess(WcetResult& r, ir::Storage storage, bool isWrite,
                  const TimingModel& model) {
  auto& slot = isWrite ? r.accesses.writes : r.accesses.reads;
  slot[static_cast<std::size_t>(storage)] += 1;
  const Cycles c = model.accessCost(storage);
  r.memoryCycles += c;
  r.cycles += c;
}

}  // namespace

WcetResult SchemaAnalyzer::analyzeRef(const ir::VarRef& ref,
                                      bool isWrite) const {
  WcetResult r;
  const ir::VarDecl* decl = fn_.find(ref.name());
  if (decl == nullptr) {
    // Loop variable: register access, no memory traffic (mirrors the
    // interpreter, which meters nothing for loop-variable reads).
    return r;
  }
  // Index evaluation + flattening arithmetic, mirroring
  // Evaluator::flatIndex exactly.
  const std::size_t rank = ref.indices().size();
  for (std::size_t d = 0; d < rank; ++d) {
    r += analyzeExpr(*ref.indices()[d]);
    if (d != 0) chargeOp(r, OpClass::IntMul, model_);
    if (rank > 1) chargeOp(r, OpClass::IntAlu, model_);
  }
  chargeAccess(r, decl->storage, isWrite, model_);
  return r;
}

WcetResult SchemaAnalyzer::analyzeExpr(const ir::Expr& expr) const {
  WcetResult r;
  switch (expr.kind()) {
    case ir::ExprKind::IntLit:
    case ir::ExprKind::FloatLit:
    case ir::ExprKind::BoolLit:
      break;
    case ir::ExprKind::VarRef:
      r += analyzeRef(ir::cast<ir::VarRef>(expr), /*isWrite=*/false);
      break;
    case ir::ExprKind::BinOp: {
      const auto& bin = ir::cast<ir::BinOp>(expr);
      // Worst case: both operands evaluated (short-circuiting only ever
      // skips work at run time).
      r += analyzeExpr(bin.lhs());
      r += analyzeExpr(bin.rhs());
      // Operand "floatness" is unknown without full type inference here;
      // assume float for arithmetic (the conservative, higher-cost class)
      // unless the operator is purely logical.
      if (ir::isLogical(bin.op())) {
        chargeOp(r, OpClass::IntAlu, model_);
      } else {
        chargeOpEither(r, ir::classifyBinOp(bin.op(), /*floatOperands=*/false),
                       ir::classifyBinOp(bin.op(), /*floatOperands=*/true),
                       model_);
      }
      break;
    }
    case ir::ExprKind::UnOp: {
      const auto& un = ir::cast<ir::UnOp>(expr);
      r += analyzeExpr(un.operand());
      chargeOpEither(r, ir::classifyUnOp(un.op(), /*floatOperand=*/false),
                     ir::classifyUnOp(un.op(), /*floatOperand=*/true), model_);
      break;
    }
    case ir::ExprKind::Call: {
      const auto& call = ir::cast<ir::Call>(expr);
      for (const ir::ExprPtr& a : call.args()) r += analyzeExpr(*a);
      chargeOp(r, OpClass::MathFunc, model_);
      break;
    }
    case ir::ExprKind::Select: {
      const auto& sel = ir::cast<ir::Select>(expr);
      r += analyzeExpr(sel.cond());
      chargeOp(r, OpClass::Select, model_);
      r += WcetResult::max(analyzeExpr(sel.onTrue()),
                           analyzeExpr(sel.onFalse()));
      break;
    }
  }
  return r;
}

WcetResult SchemaAnalyzer::analyzeStmt(const ir::Stmt& stmt) const {
  WcetResult r;
  switch (stmt.kind()) {
    case ir::StmtKind::Assign: {
      const auto& assign = ir::cast<ir::Assign>(stmt);
      r += analyzeExpr(assign.rhs());
      r += analyzeRef(assign.lhs(), /*isWrite=*/true);
      break;
    }
    case ir::StmtKind::For: {
      const auto& loop = ir::cast<ir::For>(stmt);
      const std::int64_t trip = loop.tripCount();
      if (trip > 0) {
        WcetResult iteration = analyzeBlock(loop.body());
        chargeOp(iteration, OpClass::LoopStep, model_);
        iteration *= trip;
        r += iteration;
      }
      chargeOp(r, OpClass::Branch, model_);  // final exit test
      break;
    }
    case ir::StmtKind::If: {
      const auto& branch = ir::cast<ir::If>(stmt);
      r += analyzeExpr(branch.cond());
      chargeOp(r, OpClass::Branch, model_);
      r += WcetResult::max(analyzeBlock(branch.thenBody()),
                           analyzeBlock(branch.elseBody()));
      break;
    }
    case ir::StmtKind::Block:
      r += analyzeBlock(ir::cast<ir::Block>(stmt));
      break;
  }
  return r;
}

WcetResult SchemaAnalyzer::analyzeBlock(const ir::Block& block) const {
  WcetResult r;
  for (const ir::StmtPtr& s : block.stmts()) r += analyzeStmt(*s);
  return r;
}

// ------------------------------------------------------------- CfgAnalyzer

Cycles CfgAnalyzer::nodeCost(const ir::CfgNode& node) const {
  SchemaAnalyzer schema(fn_, model_);
  switch (node.kind) {
    case ir::CfgNodeKind::Entry:
    case ir::CfgNodeKind::Exit:
    case ir::CfgNodeKind::Join:
      return 0;
    case ir::CfgNodeKind::Basic: {
      Cycles total = 0;
      for (const ir::Assign* assign : node.assigns) {
        total += schema.analyzeStmt(*assign).cycles;
      }
      return total;
    }
    case ir::CfgNodeKind::Branch:
      return schema.analyzeExpr(*node.cond).cycles +
             model_.opCost(OpClass::Branch);
    case ir::CfgNodeKind::Loop: {
      const std::int64_t trip = node.loop->tripCount();
      Cycles total = model_.opCost(OpClass::Branch);
      if (trip > 0) {
        const Cycles body = longestPath(*node.body);
        total += trip * (body + model_.opCost(OpClass::LoopStep));
      }
      return total;
    }
  }
  return 0;
}

Cycles CfgAnalyzer::longestPath(const ir::Cfg& cfg) const {
  const std::vector<int> order = cfg.topoOrder();
  std::vector<Cycles> dist(cfg.nodes().size(),
                           std::numeric_limits<Cycles>::min());
  dist[static_cast<std::size_t>(cfg.entry())] = 0;
  for (int id : order) {
    const Cycles here = dist[static_cast<std::size_t>(id)];
    if (here == std::numeric_limits<Cycles>::min()) continue;
    const Cycles total = here + nodeCost(cfg.node(id));
    for (int s : cfg.node(id).succs) {
      dist[static_cast<std::size_t>(s)] =
          std::max(dist[static_cast<std::size_t>(s)], total);
    }
  }
  const Cycles result = dist[static_cast<std::size_t>(cfg.exit())];
  if (result == std::numeric_limits<Cycles>::min()) {
    throw ToolchainError("CFG exit unreachable (internal error)");
  }
  return result;
}

Cycles CfgAnalyzer::analyzeBlock(const ir::Block& block) const {
  const std::unique_ptr<ir::Cfg> cfg = ir::Cfg::build(block);
  return longestPath(*cfg);
}

// ------------------------------------------------------------- Loop bounds

namespace {

void collectBounds(const ir::Block& block, int depth,
                   std::vector<LoopBound>& out) {
  for (const ir::StmtPtr& s : block.stmts()) {
    switch (s->kind()) {
      case ir::StmtKind::For: {
        const auto& loop = ir::cast<ir::For>(*s);
        out.push_back(LoopBound{loop.var(), loop.tripCount(), depth});
        collectBounds(loop.body(), depth + 1, out);
        break;
      }
      case ir::StmtKind::If: {
        const auto& branch = ir::cast<ir::If>(*s);
        collectBounds(branch.thenBody(), depth, out);
        collectBounds(branch.elseBody(), depth, out);
        break;
      }
      case ir::StmtKind::Block:
        collectBounds(ir::cast<ir::Block>(*s), depth, out);
        break;
      case ir::StmtKind::Assign:
        break;
    }
  }
}

}  // namespace

std::vector<LoopBound> collectLoopBounds(const ir::Block& block) {
  std::vector<LoopBound> out;
  collectBounds(block, 0, out);
  return out;
}

}  // namespace argo::wcet
