// Explicit parallel program model.
//
// Paper Section II-C: "The result of the scheduling/mapping stage is used
// to transform the initial program representation into an explicit parallel
// program model, in which the synchronizations are made explicit, and the
// final memory address mapping of the variables and the buffers is
// obtained."
//
// A ParallelProgram is a per-core list of operations:
//   Execute(task)  — run one task's IR statements
//   Signal(event)  — post a producer->consumer event (cross-core dep)
//   Wait(event)    — block until the event is posted
// plus the address map placing every Shared variable in shared memory and
// every Scratchpad variable at an SPM offset of its owning tile. This is
// the representation both the system-level WCET analysis (src/syswcet) and
// the timing simulator (src/sim) consume.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "adl/platform.h"
#include "htg/htg.h"
#include "sched/schedule.h"

namespace argo::par {

using adl::Cycles;

/// Kinds of per-core operations.
enum class OpKind : std::uint8_t { Execute, Signal, Wait };

/// One operation of a core program.
struct ParOp {
  OpKind kind = OpKind::Execute;
  /// Execute: task id into the TaskGraph.
  int task = -1;
  /// Signal/Wait: event id.
  int event = -1;
};

/// All operations of one core, in execution order.
struct CoreProgram {
  int tile = 0;
  std::vector<ParOp> ops;
};

/// A cross-core dependence made explicit.
struct Event {
  int id = 0;
  int producerTask = -1;
  int consumerTask = -1;
  int producerTile = -1;
  int consumerTile = -1;
  /// Bytes the consumer must see (drives the communication WCET).
  std::int64_t bytes = 0;
  std::set<std::string> vars;
};

/// Placement of one variable in the memory map.
struct AddressEntry {
  std::string name;
  ir::Storage storage = ir::Storage::Shared;
  /// Shared: absolute byte address. Scratchpad: byte offset within the
  /// owning tile's SPM. Local: register-allocated, address 0.
  std::int64_t address = 0;
  std::int64_t bytes = 0;
  /// Owning tile for Scratchpad entries; -1 otherwise.
  int tile = -1;
};

/// The explicit parallel program.
struct ParallelProgram {
  const htg::TaskGraph* graph = nullptr;
  sched::Schedule schedule;
  std::vector<CoreProgram> cores;
  std::vector<Event> events;
  std::map<std::string, AddressEntry> addresses;
  /// Cycles charged for executing one Signal or Wait operation (they are
  /// implemented as one shared-memory flag access each).
  Cycles syncOverhead = 0;

  [[nodiscard]] const Event& event(int id) const { return events.at(id); }
};

/// Builds the explicit parallel program for a validated schedule.
/// Throws support::ToolchainError if the schedule is structurally invalid
/// or the address map overflows the platform's memories.
[[nodiscard]] ParallelProgram buildParallelProgram(
    const htg::TaskGraph& graph, const sched::Schedule& schedule,
    const adl::Platform& platform);

/// Renders per-core C-like source code for inspection and documentation
/// (the "generate C code following the WCET-aware programming model" step
/// of Section II-C).
[[nodiscard]] std::string emitCoreSource(const ParallelProgram& program,
                                         int tile);

}  // namespace argo::par
