#include "par/parallel_program.h"

#include <algorithm>
#include <sstream>

#include "ir/printer.h"
#include "support/diagnostics.h"

namespace argo::par {

using support::ToolchainError;

namespace {

/// Aligns `value` upward to `alignment` (a power of two).
std::int64_t alignUp(std::int64_t value, std::int64_t alignment) {
  return (value + alignment - 1) & ~(alignment - 1);
}

std::map<std::string, AddressEntry> buildAddressMap(
    const htg::TaskGraph& graph, const sched::Schedule& schedule,
    const adl::Platform& platform) {
  const ir::Function& fn = *graph.fn;

  // Scratchpad owner: the tile executing the (unique) task set that touches
  // the variable. The SPM allocation pass guarantees single-tile usage for
  // written variables; read-only variables are replicated per tile, so any
  // tile works as the nominal owner.
  std::map<std::string, int> spmOwner;
  for (std::size_t t = 0; t < graph.tasks.size(); ++t) {
    const int tile = schedule.placements[t].tile;
    for (const std::string& v : graph.tasks[t].usage.reads) {
      spmOwner.emplace(v, tile);
    }
    for (const std::string& v : graph.tasks[t].usage.writes) {
      spmOwner.emplace(v, tile);
    }
  }

  std::map<std::string, AddressEntry> map;
  std::int64_t sharedCursor = 0x1000;  // leave room for sync flags
  std::vector<std::int64_t> spmCursor(
      static_cast<std::size_t>(platform.coreCount()), 0);

  for (const ir::VarDecl& decl : fn.decls()) {
    AddressEntry entry;
    entry.name = decl.name;
    entry.storage = decl.storage;
    entry.bytes = decl.type.byteSize();
    switch (decl.storage) {
      case ir::Storage::Shared: {
        sharedCursor = alignUp(sharedCursor, 8);
        entry.address = sharedCursor;
        sharedCursor += entry.bytes;
        break;
      }
      case ir::Storage::Scratchpad: {
        auto it = spmOwner.find(decl.name);
        const int tile = it == spmOwner.end() ? 0 : it->second;
        auto& cursor = spmCursor[static_cast<std::size_t>(tile)];
        cursor = alignUp(cursor, 8);
        entry.address = cursor;
        entry.tile = tile;
        cursor += entry.bytes;
        if (cursor > platform.tile(tile).core.spmBytes) {
          throw ToolchainError("scratchpad overflow on tile " +
                               std::to_string(tile) + " placing '" +
                               decl.name + "'");
        }
        break;
      }
      case ir::Storage::Local:
        entry.address = 0;
        break;
    }
    map.emplace(decl.name, std::move(entry));
  }
  if (sharedCursor > platform.sharedMemBytes()) {
    throw ToolchainError("shared memory overflow (" +
                         std::to_string(sharedCursor) + " bytes needed)");
  }
  return map;
}

}  // namespace

ParallelProgram buildParallelProgram(const htg::TaskGraph& graph,
                                     const sched::Schedule& schedule,
                                     const adl::Platform& platform) {
  if (schedule.placements.size() != graph.tasks.size()) {
    throw ToolchainError("schedule does not cover the task graph");
  }

  ParallelProgram program;
  program.graph = &graph;
  program.schedule = schedule;
  // A signal/wait is one flag write/read in shared memory.
  program.syncOverhead = platform.sharedAccessBase(0);

  // Events: one per cross-tile dependence edge.
  std::map<std::uint64_t, int> eventOf;  // (from<<32|to) -> event id
  for (const htg::Dep& dep : graph.deps) {
    const int fromTile =
        schedule.placements[static_cast<std::size_t>(dep.from)].tile;
    const int toTile =
        schedule.placements[static_cast<std::size_t>(dep.to)].tile;
    if (fromTile == toTile) continue;  // program order on the same core
    Event event;
    event.id = static_cast<int>(program.events.size());
    event.producerTask = dep.from;
    event.consumerTask = dep.to;
    event.producerTile = fromTile;
    event.consumerTile = toTile;
    event.bytes = dep.bytes;
    event.vars = dep.vars;
    eventOf.emplace((static_cast<std::uint64_t>(
                         static_cast<std::uint32_t>(dep.from))
                     << 32) |
                        static_cast<std::uint32_t>(dep.to),
                    event.id);
    program.events.push_back(std::move(event));
  }

  // Core programs: tile order from the schedule; a task's waits precede
  // its Execute, its signals follow it (ordered by event id for
  // determinism).
  program.cores.resize(static_cast<std::size_t>(platform.coreCount()));
  for (int tile = 0; tile < platform.coreCount(); ++tile) {
    CoreProgram& core = program.cores[static_cast<std::size_t>(tile)];
    core.tile = tile;
    if (static_cast<std::size_t>(tile) >= schedule.tileOrder.size()) continue;
    for (int task : schedule.tileOrder[static_cast<std::size_t>(tile)]) {
      std::vector<int> waits;
      std::vector<int> signals;
      for (const Event& e : program.events) {
        if (e.consumerTask == task) waits.push_back(e.id);
        if (e.producerTask == task) signals.push_back(e.id);
      }
      std::sort(waits.begin(), waits.end());
      std::sort(signals.begin(), signals.end());
      for (int e : waits) {
        core.ops.push_back(ParOp{OpKind::Wait, -1, e});
      }
      core.ops.push_back(ParOp{OpKind::Execute, task, -1});
      for (int e : signals) {
        core.ops.push_back(ParOp{OpKind::Signal, -1, e});
      }
    }
  }

  program.addresses = buildAddressMap(graph, schedule, platform);
  return program;
}

std::string emitCoreSource(const ParallelProgram& program, int tile) {
  const CoreProgram& core = program.cores.at(static_cast<std::size_t>(tile));
  std::ostringstream os;
  os << "// Generated by the ARGO tool-chain — core " << tile << "\n";
  os << "// WCET-aware programming model: static task order, explicit sync.\n";
  os << "void core" << tile << "_step(void) {\n";
  for (const ParOp& op : core.ops) {
    switch (op.kind) {
      case OpKind::Wait:
        os << "  argo_wait(EV_" << op.event << ");  // from task "
           << program.event(op.event).producerTask << "\n";
        break;
      case OpKind::Signal:
        os << "  argo_signal(EV_" << op.event << ");  // to task "
           << program.event(op.event).consumerTask << "\n";
        break;
      case OpKind::Execute: {
        const htg::Task& task =
            program.graph->tasks[static_cast<std::size_t>(op.task)];
        os << "  // task " << task.name << " (WCET-analyzed)\n";
        for (const ir::StmtPtr& s : task.stmts) {
          std::istringstream lines(ir::toString(*s, 1));
          std::string line;
          while (std::getline(lines, line)) os << "  " << line << "\n";
        }
        break;
      }
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace argo::par
