#include "core/metrics_report.h"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "support/metrics.h"

namespace argo::core {

namespace {

/// Minimal JSON string escaping for metric names (dotted identifiers in
/// practice, but the registry accepts anything).
std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
      continue;
    }
    out += c;
  }
  return out;
}

void addStage(std::vector<std::pair<std::string, std::uint64_t>>& entries,
              std::string_view stage, const support::StageCacheStats& s) {
  const std::string prefix = "cache." + std::string(stage) + ".";
  entries.emplace_back(prefix + "hits", s.hits);
  entries.emplace_back(prefix + "misses", s.misses);
  entries.emplace_back(prefix + "inflight_waits", s.inflightWaits);
}

}  // namespace

void warnDiskRejects(const char* tool,
                     const std::optional<ToolchainCacheStats>& stats) {
  if (!stats.has_value() || !stats->disk.has_value() ||
      stats->disk->rejects == 0) {
    return;
  }
  // Determinism-relevant (a damaged or version-skewed cache directory
  // silently costing recomputes), so surfaced regardless of --timings —
  // unlike every other cache counter. Wording pinned by ctest.
  std::fprintf(stderr,
               "%s: disk cache rejected %llu record(s) "
               "(recomputed; cache dir may be damaged or "
               "version-skewed)\n",
               tool,
               static_cast<unsigned long long>(stats->disk->rejects));
}

void appendMetricsJson(std::string& out,
                       const std::optional<ToolchainCacheStats>& cacheStats) {
  std::vector<std::pair<std::string, std::uint64_t>> entries;
  for (const support::MetricSample& sample :
       support::MetricsRegistry::global().snapshot()) {
    entries.emplace_back(sample.name, sample.value);
  }
  if (cacheStats.has_value()) {
    // The per-stage counters fold into the same namespace under the
    // kDiskStage* spelling — the one the per-lookup "cache" trace spans
    // are named with, so span totals and counters line up one-to-one.
    addStage(entries, kDiskStageTransforms, cacheStats->transforms);
    addStage(entries, kDiskStageSequentialWcet, cacheStats->sequentialWcet);
    addStage(entries, kDiskStageExpansion, cacheStats->expansion);
    addStage(entries, kDiskStageTimings, cacheStats->timings);
    addStage(entries, kDiskStageSchedules, cacheStats->schedules);
    if (cacheStats->disk.has_value()) {
      const support::DiskCacheStats& d = *cacheStats->disk;
      entries.emplace_back("disk.hits", d.hits);
      entries.emplace_back("disk.misses", d.misses);
      entries.emplace_back("disk.rejects", d.rejects);
      entries.emplace_back("disk.stores", d.stores);
      entries.emplace_back("disk.store_failures", d.storeFailures);
    }
  }
  std::sort(entries.begin(), entries.end());

  out += ",\"metrics\":{";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i != 0) out += ",";
    out += "\"";
    out += jsonEscape(entries[i].first);
    out += "\":";
    out += std::to_string(entries[i].second);
  }
  out += "}";
}

}  // namespace argo::core
