#include "core/toolchain.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "support/parallel.h"
#include "support/strings.h"
#include "transform/const_fold.h"
#include "transform/loop_transforms.h"
#include "transform/spm_alloc.h"

namespace argo::core {

namespace {

class StageClock {
 public:
  explicit StageClock(std::vector<StageTiming>& sink) : sink_(sink) {}

  template <typename Fn>
  auto time(const std::string& stage, Fn&& fn) {
    const auto begin = std::chrono::steady_clock::now();
    if constexpr (std::is_void_v<decltype(fn())>) {
      fn();
      record(stage, begin);
    } else {
      auto result = fn();
      record(stage, begin);
      return result;
    }
  }

 private:
  void record(const std::string& stage,
              std::chrono::steady_clock::time_point begin) {
    const auto end = std::chrono::steady_clock::now();
    sink_.push_back(StageTiming{
        stage,
        std::chrono::duration<double, std::milli>(end - begin).count()});
  }

  std::vector<StageTiming>& sink_;
};

}  // namespace

ToolchainResult Toolchain::run(const model::Diagram& diagram) const {
  return run(diagram.compile());
}

codegen::Emission Toolchain::emitC(const ToolchainResult& result,
                                   const codegen::InputTrace& trace,
                                   const codegen::EmitOptions& options) const {
  return codegen::emitProgram(result.program, platform_, result.constants,
                              trace, options);
}

ToolchainResult Toolchain::run(const model::CompiledModel& model) const {
  ToolchainResult result;
  StageClock clock(result.stages);

  // ---- IR + predictability-enhancing transformations (Fig. 1 left). ----
  result.fn = model.fn->clone();
  result.constants = model.constants;
  clock.time("transforms", [&] {
    transform::PassManager pm;
    if (options_.runTransforms) {
      pm.add(std::make_unique<transform::ConstantFolding>());
      pm.add(std::make_unique<transform::IndexSetSplitting>());
      pm.add(std::make_unique<transform::LoopFusion>());
    }
    if (options_.spmAllocation) {
      const adl::CoreModel& core = platform_.tile(0).core;
      pm.add(std::make_unique<transform::ScratchpadAllocation>(
          core.spmBytes, platform_.sharedAccessBase(0),
          core.spmAccessCycles));
    }
    result.passesRun = pm.run(*result.fn);
  });

  // ---- Sequential reference bound (single core, no interference). ----
  clock.time("code_level_wcet", [&] {
    const wcet::TimingModel model0 = wcet::TimingModel::forTile(platform_, 0);
    result.sequentialWcet =
        wcet::SchemaAnalyzer(*result.fn, model0).analyzeFunction().cycles;
  });

  // ---- Task extraction: one HTG, several candidate granularities. ----
  const htg::Htg htg = clock.time("task_extraction",
                                  [&] { return htg::buildHtg(*result.fn); });

  std::vector<int> candidates = options_.chunkCandidates;
  if (candidates.empty()) {
    for (int c = 1; c <= 2 * platform_.coreCount(); c *= 2) {
      candidates.push_back(c);
    }
  }

  // ---- Cross-layer feedback: schedule each candidate, measure its
  // system-level WCET, keep the best (Section II-E). Candidates are
  // independent (each owns its expanded graph; htg/platform are only
  // read), so they are evaluated concurrently on a work-stealing pool.
  // Determinism: every candidate writes into its own slot, and the
  // reduction below walks the slots in ladder order with a strict `<`, so
  // the chosen candidate, the FeedbackPoint sequence, and the report are
  // bit-identical to a sequential evaluation. ----
  struct Candidate {
    int chunks;
    int coreLimit;  // 0 = unrestricted
  };
  std::vector<Candidate> plans;
  // Sequential-mapping fallback first: parallelization must *beat* one
  // core to be selected at all.
  plans.push_back(Candidate{1, 1});
  for (int chunks : candidates) plans.push_back(Candidate{chunks, 0});

  struct PlanEval {
    std::unique_ptr<htg::TaskGraph> graph;
    std::vector<sched::TaskTiming> timings;
    sched::Schedule schedule;
    syswcet::SystemWcet system;
  };

  // Exploration parallelism decided up front: candidates are the outer
  // pooled phase, so every phase they invoke (timing analysis, annealing
  // restarts, MHP rows) must stay sequential — pools do not nest.
  const unsigned threads =
      support::effectiveParallelism(options_.explorationThreads, plans.size());

  const auto evaluatePlan = [&](const Candidate& plan) {
    PlanEval eval;
    htg::ExpandOptions expand;
    expand.chunksPerLoop = plan.chunks;
    expand.mergeScalarChains = options_.mergeScalarChains;
    eval.graph = std::make_unique<htg::TaskGraph>(htg::expand(htg, expand));
    // Candidates an exact policy cannot represent are not rejected here:
    // the branch-and-bound policy itself falls back to HEFT beyond its
    // task cap (sched/bnb.h), so every candidate stays comparable.
    sched::SchedOptions schedOptions = options_.sched;
    if (plan.coreLimit > 0) schedOptions.coreLimit = plan.coreLimit;
    // A pooled exploration owns the thread budget, so the per-candidate
    // scheduler phases (timing analysis, annealing restarts, BnB subtrees)
    // must stay inline; a sequential exploration lets the scheduler pool
    // its own phases (results are identical either way).
    if (threads > 1) schedOptions.parallelThreads = 1;
    sched::Scheduler scheduler(*eval.graph, platform_, schedOptions);
    eval.schedule = scheduler.run(schedOptions);
    par::ParallelProgram program =
        par::buildParallelProgram(*eval.graph, eval.schedule, platform_);
    eval.system = syswcet::analyzeSystem(program, platform_,
                                         scheduler.timings(),
                                         options_.interference,
                                         schedOptions.parallelThreads);
    eval.timings = scheduler.timings();
    return eval;
  };

  bool haveBest = false;
  // Ladder-order reduction step: identical for both paths, so the choice
  // (strict `<`, first minimum wins) matches the sequential semantics.
  const auto consume = [&](std::size_t i, PlanEval eval) {
    result.feedback.push_back(FeedbackPoint{
        plans[i].chunks, plans[i].coreLimit, eval.system.makespan,
        static_cast<int>(eval.graph->tasks.size())});
    if (!haveBest || eval.system.makespan < result.system.makespan) {
      haveBest = true;
      result.graph = std::move(eval.graph);
      result.timings = std::move(eval.timings);
      result.schedule = std::move(eval.schedule);
      result.system = std::move(eval.system);
      result.chosenChunks = plans[i].chunks;
    }
  };

  clock.time("schedule_and_system_wcet", [&] {
    if (threads <= 1) {
      // Streaming: at most one candidate's graph alive besides the best.
      for (std::size_t i = 0; i < plans.size(); ++i) {
        consume(i, evaluatePlan(plans[i]));
      }
    } else {
      std::vector<PlanEval> evals(plans.size());
      support::parallelFor(plans.size(),
                           static_cast<int>(threads), [&](std::size_t i) {
        evals[i] = evaluatePlan(plans[i]);
      });
      for (std::size_t i = 0; i < plans.size(); ++i) {
        consume(i, std::move(evals[i]));
      }
    }
  });
  if (!haveBest) {
    throw support::ToolchainError("tool-chain: no feasible parallelization");
  }

  // ---- Final explicit parallel program against the kept graph (its
  // internal pointers must target the result-owned objects). ----
  clock.time("parallel_model", [&] {
    result.program =
        par::buildParallelProgram(*result.graph, result.schedule, platform_);
  });

  return result;
}

std::string ToolchainResult::reportText(bool includeStageTimings) const {
  std::ostringstream os;
  os << "=== ARGO tool-chain report ===\n";
  os << "function:            " << fn->name() << "\n";
  os << "passes run:          "
     << (passesRun.empty() ? "(none)" : support::join(passesRun, ", "))
     << "\n";
  os << "tasks:               " << graph->tasks.size() << " (chunks/loop "
     << chosenChunks << ")\n";
  os << "schedule policy:     " << schedule.policy << " on "
     << schedule.tilesUsed << " tiles\n";
  os << "sequential WCET:     " << support::formatCycles(sequentialWcet)
     << " cycles\n";
  os << "parallel WCET bound: " << support::formatCycles(system.makespan)
     << " cycles\n";
  os << "guaranteed speedup:  " << wcetSpeedup() << "x\n";
  os << "feedback points:\n";
  for (const FeedbackPoint& p : feedback) {
    os << "  chunks=" << p.chunksPerLoop
       << (p.coreLimit == 1 ? " (sequential mapping)" : "")
       << " tasks=" << p.tasks
       << " systemWCET=" << support::formatCycles(p.systemWcet)
       << (p.systemWcet == system.makespan ? "  <== chosen" : "") << "\n";
  }
  if (includeStageTimings) {
    os << "stage timings:\n";
    for (const StageTiming& s : stages) {
      os << "  " << s.stage << ": " << s.milliseconds << " ms\n";
    }
  }
  return os.str();
}

}  // namespace argo::core
