#include "core/toolchain.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <sstream>

#include "core/cache.h"
#include "ir/printer.h"
#include "support/parallel.h"
#include "support/strings.h"
#include "support/trace.h"
#include "transform/const_fold.h"
#include "transform/loop_transforms.h"
#include "transform/spm_alloc.h"

namespace argo::core {

namespace {

class StageClock {
 public:
  explicit StageClock(std::vector<StageTiming>& sink) : sink_(sink) {}

  template <typename Fn>
  auto time(const std::string& stage, Fn&& fn) {
    // Same boundary, two sinks: wall-ms into the --timings stage table,
    // and one "toolchain" span per stage into the trace recorder.
    support::TraceSpan span("toolchain", stage);
    const auto begin = std::chrono::steady_clock::now();
    if constexpr (std::is_void_v<decltype(fn())>) {
      fn();
      record(stage, begin);
    } else {
      auto result = fn();
      record(stage, begin);
      return result;
    }
  }

 private:
  void record(const std::string& stage,
              std::chrono::steady_clock::time_point begin) {
    const auto end = std::chrono::steady_clock::now();
    sink_.push_back(StageTiming{
        stage,
        std::chrono::duration<double, std::milli>(end - begin).count()});
  }

  std::vector<StageTiming>& sink_;
};

/// The predictability transform pipeline (Fig. 1 left), applied in place.
std::vector<std::string> runTransformPasses(ir::Function& fn,
                                            const adl::Platform& platform,
                                            const ToolchainOptions& options) {
  transform::PassManager pm;
  if (options.runTransforms) {
    pm.add(std::make_unique<transform::ConstantFolding>());
    pm.add(std::make_unique<transform::IndexSetSplitting>());
    pm.add(std::make_unique<transform::LoopFusion>());
  }
  if (options.spmAllocation) {
    const adl::CoreModel& core = platform.tile(0).core;
    pm.add(std::make_unique<transform::ScratchpadAllocation>(
        core.spmBytes, platform.sharedAccessBase(0), core.spmAccessCycles));
  }
  return pm.run(fn);
}

/// The transforms stage as a cacheable value: transformed clone of the
/// model function plus its canonical IR text and key.
TransformsStage makeTransformsStage(const model::CompiledModel& model,
                                    const adl::Platform& platform,
                                    const ToolchainOptions& options) {
  TransformsStage stage;
  std::unique_ptr<ir::Function> fn = model.fn->clone();
  stage.passesRun = runTransformPasses(*fn, platform, options);
  stage.irText = ir::toString(*fn);
  stage.irKey = support::Hasher().str(stage.irText).finish();
  stage.fn = std::move(fn);
  return stage;
}

/// One feedback candidate: a granularity plus an optional core
/// restriction.
struct Candidate {
  int chunks;
  int coreLimit;  // 0 = unrestricted
};

/// The candidate ladder of the feedback loop: sequential-mapping fallback
/// first (parallelization must *beat* one core to be selected), then every
/// requested granularity.
std::vector<Candidate> buildPlans(const adl::Platform& platform,
                                  const ToolchainOptions& options) {
  std::vector<int> candidates = options.chunkCandidates;
  if (candidates.empty()) {
    for (int c = 1; c <= 2 * platform.coreCount(); c *= 2) {
      candidates.push_back(c);
    }
  }
  std::vector<Candidate> plans;
  plans.push_back(Candidate{1, 1});
  for (int chunks : candidates) plans.push_back(Candidate{chunks, 0});
  return plans;
}

}  // namespace

ToolchainResult Toolchain::run(const model::Diagram& diagram) const {
  return run(diagram.compile());
}

codegen::Emission Toolchain::emitC(const ToolchainResult& result,
                                   const codegen::InputTrace& trace,
                                   const codegen::EmitOptions& options) const {
  return codegen::emitProgram(result.program, platform_, result.constants,
                              trace, options);
}

void Toolchain::warmSharedStages(const model::CompiledModel& model) const {
  ToolchainCache* const cache = options_.cache.get();
  if (cache == nullptr) return;

  const std::shared_ptr<const TransformsStage> transformed =
      cache->getTransforms(
          transformsKey(ir::toString(*model.fn), platform_,
                        options_.runTransforms, options_.spmAllocation),
          [&] { return makeTransformsStage(model, platform_, options_); });

  (void)cache->getSequentialWcet(
      sequentialWcetKey(transformed->irKey, platform_), [&] {
        const wcet::TimingModel model0 =
            wcet::TimingModel::forTile(platform_, 0);
        return wcet::SchemaAnalyzer(*transformed->fn, model0)
            .analyzeFunction()
            .cycles;
      });

  // Warming may itself run inside a pooled phase (runEval's prefix
  // nodes), so the timing analysis stays inline; the cached table is
  // thread-count-invariant regardless.
  for (const Candidate& plan : buildPlans(platform_, options_)) {
    const support::StageKey expKey = expansionKey(
        transformed->irKey, plan.chunks, options_.mergeScalarChains);
    const std::shared_ptr<const ExpandStage> expanded =
        cache->getExpansion(expKey, transformed, [&] {
          ExpandStage stage;
          stage.source = transformed;
          htg::ExpandOptions expandOptions;
          expandOptions.chunksPerLoop = plan.chunks;
          expandOptions.mergeScalarChains = options_.mergeScalarChains;
          const htg::Htg source = htg::buildHtg(*transformed->fn);
          stage.graph = std::make_unique<const htg::TaskGraph>(
              htg::expand(source, expandOptions));
          return stage;
        });
    (void)cache->getTimings(timingsKey(expKey, platform_), [&] {
      return sched::computeTaskTimings(*expanded->graph, platform_,
                                       /*parallelThreads=*/1);
    });
  }
}

ToolchainResult Toolchain::run(const model::CompiledModel& model) const {
  ToolchainResult result;
  StageClock clock(result.stages);
  ToolchainCache* const cache = options_.cache.get();

  // ---- IR + predictability-enhancing transformations (Fig. 1 left). ----
  // With a cache the transformed function is computed once per (model IR
  // x transform flags x SPM slice) and cloned out of the shared value;
  // without one it is computed in place, exactly the pre-cache path.
  std::shared_ptr<const TransformsStage> transformed;
  clock.time("transforms", [&] {
    if (cache != nullptr) {
      transformed = cache->getTransforms(
          transformsKey(ir::toString(*model.fn), platform_,
                        options_.runTransforms, options_.spmAllocation),
          [&] { return makeTransformsStage(model, platform_, options_); });
      result.fn = transformed->fn->clone();
      result.passesRun = transformed->passesRun;
    } else {
      result.fn = model.fn->clone();
      result.passesRun = runTransformPasses(*result.fn, platform_, options_);
    }
  });
  result.constants = model.constants;

  // ---- Sequential reference bound (single core, no interference). ----
  clock.time("code_level_wcet", [&] {
    const auto analyze = [&] {
      const wcet::TimingModel model0 = wcet::TimingModel::forTile(platform_, 0);
      return wcet::SchemaAnalyzer(*result.fn, model0).analyzeFunction().cycles;
    };
    result.sequentialWcet =
        cache != nullptr
            ? *cache->getSequentialWcet(
                  sequentialWcetKey(transformed->irKey, platform_), analyze)
            : analyze();
  });

  // ---- Task extraction: one HTG, several candidate granularities. The
  // uncached path extracts here and expands per candidate; the cached
  // path expands through the cache (each expansion owns a shared graph)
  // and re-extracts only for the winner at the end. ----
  std::optional<htg::Htg> htgSource;
  if (cache == nullptr) {
    htgSource.emplace(clock.time(
        "task_extraction", [&] { return htg::buildHtg(*result.fn); }));
  }

  const std::vector<Candidate> plans = buildPlans(platform_, options_);

  // ---- Cross-layer feedback: schedule each candidate, measure its
  // system-level WCET, keep the best (Section II-E). Candidates are
  // independent (graphs are owned or shared read-only; htg/platform are
  // only read), so they are evaluated concurrently on a work-stealing
  // pool. Determinism: every candidate writes into its own slot, and the
  // reduction below walks the slots in ladder order with a strict `<`, so
  // the chosen candidate, the FeedbackPoint sequence, and the report are
  // bit-identical to a sequential evaluation — and to the cached path,
  // because every cached stage is a pure function of its keyed inputs. ----
  struct PlanEval {
    std::shared_ptr<const ExpandStage> expansion;  // cached path
    std::unique_ptr<htg::TaskGraph> ownedGraph;    // uncached path
    std::shared_ptr<const std::vector<sched::TaskTiming>> timings;
    std::shared_ptr<const ScheduleStage> outcome;

    [[nodiscard]] const htg::TaskGraph& graph() const {
      return expansion != nullptr ? *expansion->graph : *ownedGraph;
    }
  };

  // Exploration parallelism decided up front: candidates are the outer
  // pooled phase, so every phase they invoke (timing analysis, annealing
  // restarts, MHP rows) must stay sequential — pools do not nest.
  const unsigned threads =
      support::effectiveParallelism(options_.explorationThreads, plans.size());

  const auto evaluatePlan = [&](const Candidate& plan) {
    PlanEval eval;
    htg::ExpandOptions expandOptions;
    expandOptions.chunksPerLoop = plan.chunks;
    expandOptions.mergeScalarChains = options_.mergeScalarChains;
    // Candidates an exact policy cannot represent are not rejected here:
    // the branch-and-bound policy itself falls back to HEFT beyond its
    // task cap (sched/bnb.h), so every candidate stays comparable.
    sched::SchedOptions schedOptions = options_.sched;
    if (plan.coreLimit > 0) schedOptions.coreLimit = plan.coreLimit;
    // A pooled exploration owns the thread budget, so the per-candidate
    // scheduler phases (timing analysis, annealing restarts, BnB subtrees)
    // must stay inline; a sequential exploration lets the scheduler pool
    // its own phases (results are identical either way).
    if (threads > 1) schedOptions.parallelThreads = 1;

    if (cache != nullptr) {
      const support::StageKey expKey = expansionKey(
          transformed->irKey, plan.chunks, options_.mergeScalarChains);
      eval.expansion = cache->getExpansion(expKey, transformed, [&] {
        ExpandStage stage;
        stage.source = transformed;
        const htg::Htg source = htg::buildHtg(*transformed->fn);
        stage.graph = std::make_unique<const htg::TaskGraph>(
            htg::expand(source, expandOptions));
        return stage;
      });
      const support::StageKey timKey = timingsKey(expKey, platform_);
      eval.timings = cache->getTimings(timKey, [&] {
        return sched::computeTaskTimings(*eval.expansion->graph, platform_,
                                         schedOptions.parallelThreads);
      });
      eval.outcome = cache->getSchedules(
          scheduleKey(timKey, platform_, schedOptions, options_.interference),
          [&] {
            const sched::Scheduler scheduler(*eval.expansion->graph, platform_,
                                             *eval.timings);
            ScheduleStage stage;
            stage.schedule = scheduler.run(schedOptions);
            const par::ParallelProgram program = par::buildParallelProgram(
                *eval.expansion->graph, stage.schedule, platform_);
            stage.system = syswcet::analyzeSystem(
                program, platform_, scheduler.timings(), options_.interference,
                schedOptions.parallelThreads);
            return stage;
          });
    } else {
      eval.ownedGraph = std::make_unique<htg::TaskGraph>(
          htg::expand(*htgSource, expandOptions));
      const sched::Scheduler scheduler(*eval.ownedGraph, platform_,
                                       schedOptions);
      auto stage = std::make_shared<ScheduleStage>();
      stage->schedule = scheduler.run(schedOptions);
      const par::ParallelProgram program = par::buildParallelProgram(
          *eval.ownedGraph, stage->schedule, platform_);
      stage->system = syswcet::analyzeSystem(program, platform_,
                                             scheduler.timings(),
                                             options_.interference,
                                             schedOptions.parallelThreads);
      eval.timings = std::make_shared<const std::vector<sched::TaskTiming>>(
          scheduler.timings());
      eval.outcome = std::move(stage);
    }
    return eval;
  };

  bool haveBest = false;
  PlanEval best;
  // Ladder-order reduction step: identical for both paths, so the choice
  // (strict `<`, first minimum wins) matches the sequential semantics.
  const auto consume = [&](std::size_t i, PlanEval eval) {
    result.feedback.push_back(FeedbackPoint{
        plans[i].chunks, plans[i].coreLimit, eval.outcome->system.makespan,
        static_cast<int>(eval.graph().tasks.size())});
    if (!haveBest ||
        eval.outcome->system.makespan < best.outcome->system.makespan) {
      haveBest = true;
      result.chosenChunks = plans[i].chunks;
      best = std::move(eval);
    }
  };

  clock.time("schedule_and_system_wcet", [&] {
    if (threads <= 1) {
      // Streaming: at most one candidate's graph alive besides the best.
      for (std::size_t i = 0; i < plans.size(); ++i) {
        consume(i, evaluatePlan(plans[i]));
      }
    } else {
      std::vector<PlanEval> evals(plans.size());
      support::parallelFor(plans.size(),
                           static_cast<int>(threads), [&](std::size_t i) {
        evals[i] = evaluatePlan(plans[i]);
      });
      for (std::size_t i = 0; i < plans.size(); ++i) {
        consume(i, std::move(evals[i]));
      }
    }
  });
  if (!haveBest) {
    throw support::ToolchainError("tool-chain: no feasible parallelization");
  }

  result.timings = *best.timings;
  result.schedule = best.outcome->schedule;
  result.system = best.outcome->system;

  // ---- The result must own its task graph (internal pointers target the
  // result-owned function). The uncached path moves the winner's graph
  // in; the cached path re-derives it deterministically from result.fn —
  // extraction and expansion are pure, so the rebuilt graph is identical
  // to the shared cached one the schedule was computed against. ----
  if (cache != nullptr) {
    clock.time("task_extraction", [&] {
      htg::ExpandOptions expandOptions;
      expandOptions.chunksPerLoop = result.chosenChunks;
      expandOptions.mergeScalarChains = options_.mergeScalarChains;
      const htg::Htg source = htg::buildHtg(*result.fn);
      result.graph =
          std::make_unique<htg::TaskGraph>(htg::expand(source, expandOptions));
    });
  } else {
    result.graph = std::move(best.ownedGraph);
  }

  // ---- Final explicit parallel program against the kept graph. ----
  clock.time("parallel_model", [&] {
    result.program =
        par::buildParallelProgram(*result.graph, result.schedule, platform_);
  });

  return result;
}

std::string ToolchainResult::reportText(bool includeStageTimings) const {
  std::ostringstream os;
  os << "=== ARGO tool-chain report ===\n";
  os << "function:            " << fn->name() << "\n";
  os << "passes run:          "
     << (passesRun.empty() ? "(none)" : support::join(passesRun, ", "))
     << "\n";
  os << "tasks:               " << graph->tasks.size() << " (chunks/loop "
     << chosenChunks << ")\n";
  os << "schedule policy:     " << schedule.policy << " on "
     << schedule.tilesUsed << " tiles\n";
  os << "sequential WCET:     " << support::formatCycles(sequentialWcet)
     << " cycles\n";
  os << "parallel WCET bound: " << support::formatCycles(system.makespan)
     << " cycles\n";
  os << "guaranteed speedup:  " << wcetSpeedup() << "x\n";
  os << "feedback points:\n";
  for (const FeedbackPoint& p : feedback) {
    os << "  chunks=" << p.chunksPerLoop
       << (p.coreLimit == 1 ? " (sequential mapping)" : "")
       << " tasks=" << p.tasks
       << " systemWCET=" << support::formatCycles(p.systemWcet)
       << (p.systemWcet == system.makespan ? "  <== chosen" : "") << "\n";
  }
  if (includeStageTimings) {
    os << "stage timings:\n";
    for (const StageTiming& s : stages) {
      os << "  " << s.stage << ": " << s.milliseconds << " ms\n";
    }
  }
  return os.str();
}

}  // namespace argo::core
