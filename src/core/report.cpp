#include "core/report.h"

#include <algorithm>
#include <iomanip>
#include <numeric>
#include <sstream>

#include "support/strings.h"
#include "syswcet/system_wcet.h"

namespace argo::core {

std::string renderGantt(const ToolchainResult& result, int columns) {
  std::ostringstream os;
  const Cycles makespan = std::max<Cycles>(1, result.system.makespan);
  os << "worst-case schedule (0 .. " << support::formatCycles(makespan)
     << " cycles; '#' executing, '.' idle)\n";
  for (std::size_t tile = 0; tile < result.program.cores.size(); ++tile) {
    const auto& order = result.schedule.tileOrder[tile];
    if (order.empty()) continue;
    std::string row(static_cast<std::size_t>(columns), '.');
    for (int task : order) {
      const auto& bound = result.system.tasks[static_cast<std::size_t>(task)];
      int from = static_cast<int>(bound.start * columns / makespan);
      int to = static_cast<int>(bound.finish * columns / makespan);
      from = std::clamp(from, 0, columns - 1);
      to = std::clamp(to, from + 1, columns);
      for (int c = from; c < to; ++c) {
        row[static_cast<std::size_t>(c)] = '#';
      }
      // Mark the task id at its start column when there is room.
      const std::string id = std::to_string(task);
      if (from + static_cast<int>(id.size()) <= columns) {
        for (std::size_t k = 0; k < id.size(); ++k) {
          row[static_cast<std::size_t>(from) + k] = id[k];
        }
      }
    }
    os << "  tile " << tile << " |" << row << "|\n";
  }
  return os.str();
}

std::string renderMhpMatrix(const ToolchainResult& result) {
  const auto mhp = syswcet::mayHappenInParallel(result.program);
  const std::size_t n = result.graph->tasks.size();
  std::ostringstream os;
  os << "may-happen-in-parallel ('#': concurrent, '.': ordered)\n    ";
  for (std::size_t j = 0; j < n; ++j) os << (j % 10);
  os << '\n';
  for (std::size_t i = 0; i < n; ++i) {
    os << (i < 10 ? "  " : " ") << i << ' ';
    for (std::size_t j = 0; j < n; ++j) {
      os << (mhp[i][j] ? '#' : '.');
    }
    os << "  " << result.graph->tasks[i].name << '\n';
  }
  return os.str();
}

std::string renderBottlenecks(const ToolchainResult& result, int topN) {
  // Recompute the per-task split with the tile-specific timing model.
  struct Row {
    int task;
    Cycles total;
    Cycles compute;
    Cycles memory;
    Cycles interference;
    int contenders;
  };
  std::vector<Row> rows;
  for (std::size_t i = 0; i < result.graph->tasks.size(); ++i) {
    const int tile = result.schedule.placements[i].tile;
    const auto& bound = result.system.tasks[i];
    const Cycles codeLevel =
        result.timings[i].wcetByTile[static_cast<std::size_t>(tile)];
    // Compute/memory split from a fresh code-level analysis.
    Row row;
    row.task = static_cast<int>(i);
    row.total = bound.inflated;
    row.interference = bound.interference;
    row.contenders = bound.contenders;
    // The timings table stores only totals; recover the split on demand.
    row.compute = 0;
    row.memory = codeLevel;  // refined below when analyzable
    rows.push_back(row);
  }
  // Sort by inflated duration, largest first.
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.total > b.total; });
  if (static_cast<int>(rows.size()) > topN) {
    rows.resize(static_cast<std::size_t>(topN));
  }

  std::ostringstream os;
  os << "per-task bottlenecks (top " << rows.size() << " by inflated WCET)\n";
  os << std::left << std::setw(6) << "  task" << std::setw(26) << "name"
     << std::right << std::setw(12) << "inflated" << std::setw(12)
     << "code-level" << std::setw(14) << "interference" << std::setw(12)
     << "contenders" << '\n';
  for (const Row& row : rows) {
    const auto& task = result.graph->tasks[static_cast<std::size_t>(row.task)];
    os << "  " << std::left << std::setw(4) << row.task << std::setw(26)
       << task.name.substr(0, 24) << std::right << std::setw(12)
       << support::formatCycles(row.total) << std::setw(12)
       << support::formatCycles(row.memory) << std::setw(14)
       << support::formatCycles(row.interference) << std::setw(11)
       << row.contenders << 'x' << '\n';
  }
  const Cycles interferenceTotal = std::accumulate(
      result.system.tasks.begin(), result.system.tasks.end(), Cycles{0},
      [](Cycles acc, const syswcet::TaskBound& t) {
        return acc + t.interference;
      });
  os << "total interference share of all tasks: "
     << support::formatCycles(interferenceTotal) << " cycles\n";
  return os.str();
}

}  // namespace argo::core
