// Shared cache/metrics reporting for the CLIs and the batch evaluator.
//
// Two consumers duplicated this logic before PR 10: argo_cc and argo_eval
// each hand-rolled the disk-reject stderr warning, and the `--timings`
// JSON rendered only the ad-hoc cache_stats block. This header is the one
// definition of both:
//
//  * warnDiskRejects — the pinned, unconditional stderr line for a
//    nonzero disk-tier reject count ("<tool>: disk cache rejected N
//    record(s) (recomputed; cache dir may be damaged or version-skewed)").
//    The wording after the tool prefix is byte-pinned by ctest
//    (argo_eval_reports_disk_cache_rejects) — change it only with the test.
//  * appendMetricsJson — the `metrics` block of the --timings JSON: the
//    full support::MetricsRegistry snapshot merged with the per-stage
//    cache counters (spelled by the kDiskStage* names, matching the
//    "cache" trace spans) and the disk-tier counters, one flat
//    name-sorted namespace.
#pragma once

#include <optional>
#include <string>

#include "core/cache.h"

namespace argo::core {

/// Prints the pinned disk-reject warning to stderr iff `stats` carries a
/// disk tier with rejects > 0. `tool` is the CLI name prefix.
void warnDiskRejects(const char* tool,
                     const std::optional<ToolchainCacheStats>& stats);

/// Appends `,"metrics":{"name":value,...}` to `out` (leading comma
/// included): every registered metric plus, when `cacheStats` is present,
/// cache.<stage>.{hits,misses,inflight_waits} and (with a disk tier)
/// disk.{hits,misses,rejects,stores,store_failures}. Names sorted.
void appendMetricsJson(std::string& out,
                       const std::optional<ToolchainCacheStats>& cacheStats);

}  // namespace argo::core
