// Content-hash stage cache for the tool-chain: the incremental pipeline.
//
// A platform sweep re-runs the pipeline per (scenario x platform x policy)
// cell, yet most cells share everything up to placement: the transformed
// IR, the HTG expansion, and the per-task WCETs depend only on a *slice*
// of the inputs. ToolchainCache memoizes each stage of core::Toolchain on
// a 128-bit content hash of exactly the inputs that stage can observe:
//
//   transforms      (model IR text, transform flags, tile-0 SPM slice)
//   sequentialWcet  (transformed IR, tile-0 timing-model slice)
//   expansion       (transformed IR, chunksPerLoop, mergeScalarChains)
//   timings         (expansion key, all-tile timing-model slices)
//   schedules       (timings key, full pricing model, SchedOptions minus
//                    parallelThreads, interference method)
//
// Keys chain: each stage folds its upstream stage's key in, so a change
// anywhere upstream invalidates everything downstream and nothing else.
// Inputs a stage cannot observe are deliberately NOT keyed — platform and
// core display names (reports-only), sched::SchedOptions::parallelThreads
// and ToolchainOptions::explorationThreads (execution knobs; results are
// thread-count-invariant by the determinism contract), and simulator
// settings. That is what makes a cached value byte-identical to a fresh
// computation: every stage is a pure function of its keyed inputs.
//
// Sharing: one ToolchainCache may serve many Toolchain instances across
// threads (scenarios::runEval shares one across the whole batch; the
// future argod service shares one across requests). Single-flight and
// thread safety come from support::StageCache.
//
// Disk tier: attachDisk(dir) layers a support::DiskCache under the five
// in-memory caches, making the lookup order memory -> disk -> compute.
// The disk probe runs inside the in-memory compute closure, i.e. on the
// single-flight owner's thread, so per process each key touches the disk
// at most once. Every stage value has a canonical binary codec below
// (encode*/decode*); a record that fails its envelope validation OR its
// payload decode is counted as a reject and recomputed — identical bytes
// either way, because each stage is a pure function of its keyed inputs.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "adl/platform.h"
#include "htg/htg.h"
#include "sched/options.h"
#include "sched/schedule.h"
#include "support/disk_cache.h"
#include "support/hash.h"
#include "support/stage_cache.h"
#include "support/trace.h"
#include "syswcet/system_wcet.h"

namespace argo::core {

/// Cached value of the transforms stage: the transformed function (cloned
/// out of the cache by every consumer), the pass list, and the canonical
/// IR text every downstream key derives from.
struct TransformsStage {
  std::unique_ptr<const ir::Function> fn;
  std::vector<std::string> passesRun;
  std::string irText;          ///< ir::toString(*fn).
  support::StageKey irKey;     ///< Hash of irText, computed once.
};

/// Cached value of one HTG expansion. The graph's task statements are
/// clones it owns, but the graph points at the source function — `source`
/// keeps that function alive for as long as the graph is shared.
struct ExpandStage {
  std::shared_ptr<const TransformsStage> source;
  std::unique_ptr<const htg::TaskGraph> graph;
};

/// Cached value of one schedule + system-WCET evaluation (one feedback
/// candidate). Plain value types — safe to copy into ToolchainResult.
struct ScheduleStage {
  sched::Schedule schedule;
  syswcet::SystemWcet system;
};

/// Per-stage lookup counters (see support::StageCacheStats for the
/// determinism caveat on the hit/wait split). `disk` is present iff a
/// disk tier is attached; its `rejects` field is determinism-relevant
/// (see support::DiskCacheStats) and surfaced unconditionally by the
/// CLIs, unlike the rest of this struct.
struct ToolchainCacheStats {
  support::StageCacheStats transforms;
  support::StageCacheStats sequentialWcet;
  support::StageCacheStats expansion;
  support::StageCacheStats timings;
  support::StageCacheStats schedules;
  std::optional<support::DiskCacheStats> disk;
};

// ---- Disk payload codecs -------------------------------------------------
// One canonical binary encoding per cached stage value, built on the
// ByteWriter/ByteReader framing. Decoders are total: nullopt on any
// malformed payload, never a throw or a partially-filled value. The
// determinism argument for the whole disk tier reduces to: encode is a
// pure function of the value, decode(encode(v)) == v (proven per stage in
// tests/disk_cache_test.cpp), and every stage value is a pure function of
// its key.

[[nodiscard]] std::string encodeTransformsStage(const TransformsStage&);
/// Rebuilds the stage from its payload; irText/irKey are *recomputed*
/// from the decoded function (the printer is canonical), so they can
/// never disagree with the tree.
[[nodiscard]] std::optional<TransformsStage> decodeTransformsStage(
    std::string_view payload);

[[nodiscard]] std::string encodeCycles(adl::Cycles value);
[[nodiscard]] std::optional<adl::Cycles> decodeCycles(
    std::string_view payload);

[[nodiscard]] std::string encodeExpandStage(const ExpandStage&);
/// `source` is the (already loaded or computed) transforms stage this
/// expansion was keyed against: the decoded graph's statements are owned
/// clones, but its `fn` pointer targets source->fn, exactly like a fresh
/// expansion. Key chaining guarantees the pairing is right — expansionKey
/// embeds the transforms stage's irKey.
[[nodiscard]] std::optional<ExpandStage> decodeExpandStage(
    std::string_view payload, std::shared_ptr<const TransformsStage> source);

[[nodiscard]] std::string encodeTimings(
    const std::vector<sched::TaskTiming>&);
[[nodiscard]] std::optional<std::vector<sched::TaskTiming>> decodeTimings(
    std::string_view payload);

[[nodiscard]] std::string encodeScheduleStage(const ScheduleStage&);
[[nodiscard]] std::optional<ScheduleStage> decodeScheduleStage(
    std::string_view payload);

/// Stage directory names of the disk tier (dir/<stage>/<key>.rec). Also
/// the spelling cache_stats uses; fixed forever short of a format bump.
inline constexpr std::string_view kDiskStageTransforms = "transforms";
inline constexpr std::string_view kDiskStageSequentialWcet = "seqwcet";
inline constexpr std::string_view kDiskStageExpansion = "expand";
inline constexpr std::string_view kDiskStageTimings = "timings";
inline constexpr std::string_view kDiskStageSchedules = "schedule";

/// The five stage caches of one tool-chain instance pool. Create one,
/// share it via ToolchainOptions::cache across every run that should
/// reuse work. The get* accessors are what core::Toolchain calls: the
/// in-memory tier plus, when attachDisk() was called, the on-disk tier
/// probed from inside the single-flight compute slot.
class ToolchainCache {
 public:
  support::StageCache<TransformsStage> transforms;
  support::StageCache<adl::Cycles> sequentialWcet;
  support::StageCache<ExpandStage> expansion;
  support::StageCache<std::vector<sched::TaskTiming>> timings;
  support::StageCache<ScheduleStage> schedules;

  /// Layers an on-disk tier rooted at `dir` under the in-memory caches.
  /// Call before sharing the cache; not synchronized against concurrent
  /// lookups.
  void attachDisk(std::string dir) {
    disk_ = std::make_shared<support::DiskCache>(std::move(dir));
  }

  [[nodiscard]] support::DiskCache* disk() const noexcept {
    return disk_.get();
  }

  template <typename Compute>
  std::shared_ptr<const TransformsStage> getTransforms(
      const support::StageKey& key, Compute&& compute) {
    return tiered(transforms, kDiskStageTransforms, key,
                  std::forward<Compute>(compute), encodeTransformsStage,
                  [](std::string_view p) { return decodeTransformsStage(p); });
  }

  template <typename Compute>
  std::shared_ptr<const adl::Cycles> getSequentialWcet(
      const support::StageKey& key, Compute&& compute) {
    return tiered(sequentialWcet, kDiskStageSequentialWcet, key,
                  std::forward<Compute>(compute), encodeCycles,
                  [](std::string_view p) { return decodeCycles(p); });
  }

  template <typename Compute>
  std::shared_ptr<const ExpandStage> getExpansion(
      const support::StageKey& key,
      const std::shared_ptr<const TransformsStage>& source,
      Compute&& compute) {
    return tiered(expansion, kDiskStageExpansion, key,
                  std::forward<Compute>(compute),
                  [](const ExpandStage& v) { return encodeExpandStage(v); },
                  [&source](std::string_view p) {
                    return decodeExpandStage(p, source);
                  });
  }

  template <typename Compute>
  std::shared_ptr<const std::vector<sched::TaskTiming>> getTimings(
      const support::StageKey& key, Compute&& compute) {
    return tiered(timings, kDiskStageTimings, key,
                  std::forward<Compute>(compute),
                  [](const std::vector<sched::TaskTiming>& v) {
                    return encodeTimings(v);
                  },
                  [](std::string_view p) { return decodeTimings(p); });
  }

  template <typename Compute>
  std::shared_ptr<const ScheduleStage> getSchedules(
      const support::StageKey& key, Compute&& compute) {
    return tiered(schedules, kDiskStageSchedules, key,
                  std::forward<Compute>(compute), encodeScheduleStage,
                  [](std::string_view p) { return decodeScheduleStage(p); });
  }

  [[nodiscard]] ToolchainCacheStats stats() const noexcept;

 private:
  /// memory -> disk -> compute. Runs on the single-flight owner's thread;
  /// a decodable record short-circuits the compute, anything else is a
  /// counted reject (noteReject for payload-level failures — the envelope
  /// ones DiskCache::load already counted) followed by compute + store.
  template <typename Value, typename Compute, typename Encode,
            typename Decode>
  std::shared_ptr<const Value> tiered(support::StageCache<Value>& memory,
                                      std::string_view stage,
                                      const support::StageKey& key,
                                      Compute&& compute, Encode&& encode,
                                      Decode&& decode) {
    // One "cache" span per lookup, named by the stage's disk-directory
    // spelling with the single-flight outcome attached — the per-lookup
    // view whose per-stage totals equal the cache.<stage>.* counters of
    // the `metrics` block (tools/trace_summary.py --metrics checks that).
    support::TraceSpan span("cache", stage);
    support::StageCacheOutcome outcome = support::StageCacheOutcome::Miss;
    support::DiskCache* const disk = disk_.get();
    std::shared_ptr<const Value> value;
    if (disk == nullptr) {
      value = memory.getOrCompute(key, std::forward<Compute>(compute),
                                  &outcome);
    } else {
      value = memory.getOrCompute(
          key,
          [&]() -> Value {
            if (std::optional<std::string> payload = disk->load(stage, key)) {
              std::optional<Value> decoded = decode(*payload);
              if (decoded.has_value()) return std::move(*decoded);
              disk->noteReject();
              if (support::TraceRecorder::enabled()) {
                support::TraceRecorder::global().recordInstant(
                    "disk", "reject",
                    {support::TraceArg{"stage", std::string(stage)}});
              }
            }
            Value computed = compute();
            disk->store(stage, key, encode(computed));
            return computed;
          },
          &outcome);
    }
    span.arg("cache", support::stageCacheOutcomeName(outcome));
    return value;
  }

  std::shared_ptr<support::DiskCache> disk_;
};

// ---- Canonical platform slices ------------------------------------------
// The "what can this stage observe" lists, as canonical text. Keys hash
// these; tests compare them directly when arguing key sensitivity.

/// What the transform passes observe: tile-0 scratchpad capacity and
/// access cost, and the uncontended shared access cost from tile 0 (the
/// ScratchpadAllocation pass parameters).
[[nodiscard]] std::string transformPlatformSlice(const adl::Platform&);

/// What the code-level WCET analysis of one tile observes: that tile's
/// core cycle table, local/SPM access costs, and uncontended shared
/// access cost (wcet::TimingModel::forTile).
[[nodiscard]] std::string tileTimingSlice(const adl::Platform&, int tile);

/// What the per-task timing analysis observes: every tile's timing slice
/// (TaskTiming::wcetByTile spans all tiles).
[[nodiscard]] std::string timingPlatformSlice(const adl::Platform&);

// ---- Stage keys ----------------------------------------------------------

[[nodiscard]] support::StageKey transformsKey(std::string_view modelIrText,
                                              const adl::Platform& platform,
                                              bool runTransforms,
                                              bool spmAllocation);

[[nodiscard]] support::StageKey sequentialWcetKey(
    const support::StageKey& transformedIr, const adl::Platform& platform);

[[nodiscard]] support::StageKey expansionKey(
    const support::StageKey& transformedIr, int chunksPerLoop,
    bool mergeScalarChains);

[[nodiscard]] support::StageKey timingsKey(const support::StageKey& expansion,
                                           const adl::Platform& platform);

/// The schedule/syswcet stage observes the full pricing model
/// (adl::Platform::canonicalText — policies price communication and
/// par::buildParallelProgram checks address capacities) and every
/// SchedOptions field except parallelThreads, which only selects how the
/// identical result is computed.
[[nodiscard]] support::StageKey scheduleKey(
    const support::StageKey& timings, const adl::Platform& platform,
    const sched::SchedOptions& options, syswcet::InterferenceMethod method);

}  // namespace argo::core
