// Content-hash stage cache for the tool-chain: the incremental pipeline.
//
// A platform sweep re-runs the pipeline per (scenario x platform x policy)
// cell, yet most cells share everything up to placement: the transformed
// IR, the HTG expansion, and the per-task WCETs depend only on a *slice*
// of the inputs. ToolchainCache memoizes each stage of core::Toolchain on
// a 128-bit content hash of exactly the inputs that stage can observe:
//
//   transforms      (model IR text, transform flags, tile-0 SPM slice)
//   sequentialWcet  (transformed IR, tile-0 timing-model slice)
//   expansion       (transformed IR, chunksPerLoop, mergeScalarChains)
//   timings         (expansion key, all-tile timing-model slices)
//   schedules       (timings key, full pricing model, SchedOptions minus
//                    parallelThreads, interference method)
//
// Keys chain: each stage folds its upstream stage's key in, so a change
// anywhere upstream invalidates everything downstream and nothing else.
// Inputs a stage cannot observe are deliberately NOT keyed — platform and
// core display names (reports-only), sched::SchedOptions::parallelThreads
// and ToolchainOptions::explorationThreads (execution knobs; results are
// thread-count-invariant by the determinism contract), and simulator
// settings. That is what makes a cached value byte-identical to a fresh
// computation: every stage is a pure function of its keyed inputs.
//
// Sharing: one ToolchainCache may serve many Toolchain instances across
// threads (scenarios::runEval shares one across the whole batch; the
// future argod service shares one across requests). Single-flight and
// thread safety come from support::StageCache.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "adl/platform.h"
#include "htg/htg.h"
#include "sched/options.h"
#include "sched/schedule.h"
#include "support/hash.h"
#include "support/stage_cache.h"
#include "syswcet/system_wcet.h"

namespace argo::core {

/// Cached value of the transforms stage: the transformed function (cloned
/// out of the cache by every consumer), the pass list, and the canonical
/// IR text every downstream key derives from.
struct TransformsStage {
  std::unique_ptr<const ir::Function> fn;
  std::vector<std::string> passesRun;
  std::string irText;          ///< ir::toString(*fn).
  support::StageKey irKey;     ///< Hash of irText, computed once.
};

/// Cached value of one HTG expansion. The graph's task statements are
/// clones it owns, but the graph points at the source function — `source`
/// keeps that function alive for as long as the graph is shared.
struct ExpandStage {
  std::shared_ptr<const TransformsStage> source;
  std::unique_ptr<const htg::TaskGraph> graph;
};

/// Cached value of one schedule + system-WCET evaluation (one feedback
/// candidate). Plain value types — safe to copy into ToolchainResult.
struct ScheduleStage {
  sched::Schedule schedule;
  syswcet::SystemWcet system;
};

/// Per-stage lookup counters (see support::StageCacheStats for the
/// determinism caveat on the hit/wait split).
struct ToolchainCacheStats {
  support::StageCacheStats transforms;
  support::StageCacheStats sequentialWcet;
  support::StageCacheStats expansion;
  support::StageCacheStats timings;
  support::StageCacheStats schedules;
};

/// The five stage caches of one tool-chain instance pool. Create one,
/// share it via ToolchainOptions::cache across every run that should
/// reuse work.
class ToolchainCache {
 public:
  support::StageCache<TransformsStage> transforms;
  support::StageCache<adl::Cycles> sequentialWcet;
  support::StageCache<ExpandStage> expansion;
  support::StageCache<std::vector<sched::TaskTiming>> timings;
  support::StageCache<ScheduleStage> schedules;

  [[nodiscard]] ToolchainCacheStats stats() const noexcept;
};

// ---- Canonical platform slices ------------------------------------------
// The "what can this stage observe" lists, as canonical text. Keys hash
// these; tests compare them directly when arguing key sensitivity.

/// What the transform passes observe: tile-0 scratchpad capacity and
/// access cost, and the uncontended shared access cost from tile 0 (the
/// ScratchpadAllocation pass parameters).
[[nodiscard]] std::string transformPlatformSlice(const adl::Platform&);

/// What the code-level WCET analysis of one tile observes: that tile's
/// core cycle table, local/SPM access costs, and uncontended shared
/// access cost (wcet::TimingModel::forTile).
[[nodiscard]] std::string tileTimingSlice(const adl::Platform&, int tile);

/// What the per-task timing analysis observes: every tile's timing slice
/// (TaskTiming::wcetByTile spans all tiles).
[[nodiscard]] std::string timingPlatformSlice(const adl::Platform&);

// ---- Stage keys ----------------------------------------------------------

[[nodiscard]] support::StageKey transformsKey(std::string_view modelIrText,
                                              const adl::Platform& platform,
                                              bool runTransforms,
                                              bool spmAllocation);

[[nodiscard]] support::StageKey sequentialWcetKey(
    const support::StageKey& transformedIr, const adl::Platform& platform);

[[nodiscard]] support::StageKey expansionKey(
    const support::StageKey& transformedIr, int chunksPerLoop,
    bool mergeScalarChains);

[[nodiscard]] support::StageKey timingsKey(const support::StageKey& expansion,
                                           const adl::Platform& platform);

/// The schedule/syswcet stage observes the full pricing model
/// (adl::Platform::canonicalText — policies price communication and
/// par::buildParallelProgram checks address capacities) and every
/// SchedOptions field except parallelThreads, which only selects how the
/// identical result is computed.
[[nodiscard]] support::StageKey scheduleKey(
    const support::StageKey& timings, const adl::Platform& platform,
    const sched::SchedOptions& options, syswcet::InterferenceMethod method);

}  // namespace argo::core
