// Cross-layer programming interface renderings (paper Section II-E).
//
// The ARGO UI "exposes to end users at various abstraction levels the
// complex optimization decisions made by the tool-chain"; this module is
// that interface in plain-text form: a Gantt chart of the worst-case
// schedule, the may-happen-in-parallel matrix, and a per-task bottleneck
// table (compute vs memory vs interference share), so "application
// bottlenecks can be identified and the artifacts hindering an efficient
// parallelization can be outlined".
#pragma once

#include <string>

#include "core/toolchain.h"

namespace argo::core {

/// ASCII Gantt chart of the system-level worst-case schedule: one row per
/// tile, time binned into `columns` columns, task ids printed in their
/// windows.
[[nodiscard]] std::string renderGantt(const ToolchainResult& result,
                                      int columns = 72);

/// The MHP matrix of the final parallel program ('#' = may run in
/// parallel), with task names. Small graphs only (readability).
[[nodiscard]] std::string renderMhpMatrix(const ToolchainResult& result);

/// Per-task bottleneck table: WCET split into compute, memory and
/// interference shares plus the contender count — the "what is hindering
/// parallelization" view.
[[nodiscard]] std::string renderBottlenecks(const ToolchainResult& result,
                                            int topN = 12);

}  // namespace argo::core
