#include "core/cache.h"

#include "ir/printer.h"
#include "ir/serialize.h"

namespace argo::core {

namespace {

using support::ByteReader;
using support::ByteWriter;

void writeStringSet(const std::set<std::string>& set, ByteWriter& w) {
  w.u64(set.size());
  for (const std::string& s : set) w.str(s);
}

[[nodiscard]] std::set<std::string> readStringSet(ByteReader& r) {
  const std::size_t n = r.count();
  std::set<std::string> out;
  for (std::size_t i = 0; i < n && r.ok(); ++i) out.insert(r.str());
  // std::set iteration re-sorts on encode, but a duplicated entry would
  // silently shrink the set — that is corruption, not a value.
  if (out.size() != n) r.invalidate();
  return out;
}

void writeUsage(const ir::VarUsage& usage, ByteWriter& w) {
  writeStringSet(usage.reads, w);
  writeStringSet(usage.writes, w);
}

[[nodiscard]] ir::VarUsage readUsage(ByteReader& r) {
  ir::VarUsage usage;
  usage.reads = readStringSet(r);
  usage.writes = readStringSet(r);
  return usage;
}

void writeDeps(const std::vector<htg::Dep>& deps, ByteWriter& w) {
  w.u64(deps.size());
  for (const htg::Dep& d : deps) {
    w.i32(d.from);
    w.i32(d.to);
    writeStringSet(d.vars, w);
    w.i64(d.bytes);
  }
}

[[nodiscard]] std::vector<htg::Dep> readDeps(ByteReader& r) {
  const std::size_t n = r.count();
  std::vector<htg::Dep> deps;
  deps.reserve(n);
  for (std::size_t i = 0; i < n && r.ok(); ++i) {
    htg::Dep d;
    d.from = r.i32();
    d.to = r.i32();
    d.vars = readStringSet(r);
    d.bytes = r.i64();
    deps.push_back(std::move(d));
  }
  return deps;
}

}  // namespace

ToolchainCacheStats ToolchainCache::stats() const noexcept {
  ToolchainCacheStats s;
  s.transforms = transforms.stats();
  s.sequentialWcet = sequentialWcet.stats();
  s.expansion = expansion.stats();
  s.timings = timings.stats();
  s.schedules = schedules.stats();
  if (disk_ != nullptr) s.disk = disk_->stats();
  return s;
}

std::string encodeTransformsStage(const TransformsStage& stage) {
  ByteWriter w;
  ir::serializeFunction(*stage.fn, w);
  w.u64(stage.passesRun.size());
  for (const std::string& pass : stage.passesRun) w.str(pass);
  // irText/irKey are derived, not stored: the decoder recomputes both
  // from the tree, so a record can never carry a text/tree mismatch.
  return w.take();
}

std::optional<TransformsStage> decodeTransformsStage(
    std::string_view payload) {
  ByteReader r(payload);
  std::unique_ptr<ir::Function> fn = ir::deserializeFunction(r);
  if (fn == nullptr) return std::nullopt;
  TransformsStage stage;
  const std::size_t passCount = r.count();
  stage.passesRun.reserve(passCount);
  for (std::size_t i = 0; i < passCount && r.ok(); ++i) {
    stage.passesRun.push_back(r.str());
  }
  if (!r.atEnd()) return std::nullopt;
  stage.irText = ir::toString(*fn);
  stage.irKey = support::Hasher().str(stage.irText).finish();
  stage.fn = std::move(fn);
  return stage;
}

std::string encodeCycles(adl::Cycles value) {
  ByteWriter w;
  w.i64(value);
  return w.take();
}

std::optional<adl::Cycles> decodeCycles(std::string_view payload) {
  ByteReader r(payload);
  const adl::Cycles value = r.i64();
  if (!r.atEnd()) return std::nullopt;
  return value;
}

std::string encodeExpandStage(const ExpandStage& stage) {
  const htg::TaskGraph& graph = *stage.graph;
  ByteWriter w;
  w.u64(graph.tasks.size());
  for (const htg::Task& t : graph.tasks) {
    w.i32(t.id);
    w.str(t.name);
    w.u64(t.stmts.size());
    for (const ir::StmtPtr& s : t.stmts) ir::serializeStmt(*s, w);
    w.i32(t.htgNode);
    w.i32(t.chunkIndex);
    w.i32(t.chunkCount);
    writeUsage(t.usage, w);
  }
  writeDeps(graph.deps, w);
  return w.take();
}

std::optional<ExpandStage> decodeExpandStage(
    std::string_view payload,
    std::shared_ptr<const TransformsStage> source) {
  if (source == nullptr || source->fn == nullptr) return std::nullopt;
  ByteReader r(payload);
  auto graph = std::make_unique<htg::TaskGraph>();
  graph->fn = source->fn.get();
  const std::size_t taskCount = r.count();
  graph->tasks.reserve(taskCount);
  for (std::size_t i = 0; i < taskCount && r.ok(); ++i) {
    htg::Task t;
    t.id = r.i32();
    t.name = r.str();
    const std::size_t stmtCount = r.count();
    t.stmts.reserve(stmtCount);
    for (std::size_t j = 0; j < stmtCount; ++j) {
      ir::StmtPtr s = ir::deserializeStmt(r);
      if (s == nullptr) return std::nullopt;
      t.stmts.push_back(std::move(s));
    }
    t.htgNode = r.i32();
    t.chunkIndex = r.i32();
    t.chunkCount = r.i32();
    t.usage = readUsage(r);
    graph->tasks.push_back(std::move(t));
  }
  graph->deps = readDeps(r);
  if (!r.atEnd()) return std::nullopt;
  ExpandStage stage;
  stage.source = std::move(source);
  stage.graph = std::move(graph);
  return stage;
}

std::string encodeTimings(const std::vector<sched::TaskTiming>& timings) {
  ByteWriter w;
  w.u64(timings.size());
  for (const sched::TaskTiming& t : timings) {
    w.u64(t.wcetByTile.size());
    for (adl::Cycles c : t.wcetByTile) w.i64(c);
    w.i64(t.sharedAccesses);
  }
  return w.take();
}

std::optional<std::vector<sched::TaskTiming>> decodeTimings(
    std::string_view payload) {
  ByteReader r(payload);
  const std::size_t n = r.count();
  std::vector<sched::TaskTiming> timings;
  timings.reserve(n);
  for (std::size_t i = 0; i < n && r.ok(); ++i) {
    sched::TaskTiming t;
    const std::size_t tiles = r.count();
    t.wcetByTile.reserve(tiles);
    for (std::size_t j = 0; j < tiles && r.ok(); ++j) {
      t.wcetByTile.push_back(r.i64());
    }
    t.sharedAccesses = r.i64();
    timings.push_back(std::move(t));
  }
  if (!r.atEnd()) return std::nullopt;
  return timings;
}

std::string encodeScheduleStage(const ScheduleStage& stage) {
  ByteWriter w;
  w.u64(stage.schedule.placements.size());
  for (const sched::Placement& p : stage.schedule.placements) {
    w.i32(p.task);
    w.i32(p.tile);
    w.i64(p.start);
    w.i64(p.finish);
  }
  w.u64(stage.schedule.tileOrder.size());
  for (const std::vector<int>& order : stage.schedule.tileOrder) {
    w.u64(order.size());
    for (int task : order) w.i32(task);
  }
  w.i64(stage.schedule.makespan);
  w.i32(stage.schedule.tilesUsed);
  w.str(stage.schedule.policy);

  w.i64(stage.system.makespan);
  w.u64(stage.system.tasks.size());
  for (const syswcet::TaskBound& b : stage.system.tasks) {
    w.i64(b.start);
    w.i64(b.finish);
    w.i64(b.inflated);
    w.i64(b.interference);
    w.i32(b.contenders);
  }
  w.i32(stage.system.fixpointIterations);
  return w.take();
}

std::optional<ScheduleStage> decodeScheduleStage(std::string_view payload) {
  ByteReader r(payload);
  ScheduleStage stage;
  const std::size_t placements = r.count();
  stage.schedule.placements.reserve(placements);
  for (std::size_t i = 0; i < placements && r.ok(); ++i) {
    sched::Placement p;
    p.task = r.i32();
    p.tile = r.i32();
    p.start = r.i64();
    p.finish = r.i64();
    stage.schedule.placements.push_back(p);
  }
  const std::size_t tiles = r.count();
  stage.schedule.tileOrder.reserve(tiles);
  for (std::size_t i = 0; i < tiles && r.ok(); ++i) {
    const std::size_t n = r.count();
    std::vector<int> order;
    order.reserve(n);
    for (std::size_t j = 0; j < n && r.ok(); ++j) order.push_back(r.i32());
    stage.schedule.tileOrder.push_back(std::move(order));
  }
  stage.schedule.makespan = r.i64();
  stage.schedule.tilesUsed = r.i32();
  stage.schedule.policy = r.str();

  stage.system.makespan = r.i64();
  const std::size_t bounds = r.count();
  stage.system.tasks.reserve(bounds);
  for (std::size_t i = 0; i < bounds && r.ok(); ++i) {
    syswcet::TaskBound b;
    b.start = r.i64();
    b.finish = r.i64();
    b.inflated = r.i64();
    b.interference = r.i64();
    b.contenders = r.i32();
    stage.system.tasks.push_back(b);
  }
  stage.system.fixpointIterations = r.i32();
  if (!r.atEnd()) return std::nullopt;
  return stage;
}

std::string transformPlatformSlice(const adl::Platform& platform) {
  const adl::CoreModel& core = platform.tile(0).core;
  std::string out = "spmBytes=" + std::to_string(core.spmBytes);
  out += " spmAccess=" + std::to_string(core.spmAccessCycles);
  out += " sharedBase=" + std::to_string(platform.sharedAccessBase(0));
  return out;
}

std::string tileTimingSlice(const adl::Platform& platform, int tile) {
  const adl::CoreModel& core = platform.tile(tile).core;
  std::string out = "ops[";
  for (std::size_t i = 0; i < core.opCycles.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(core.opCycles[i]);
  }
  out += "] local=" + std::to_string(core.localAccessCycles);
  out += " spm=" + std::to_string(core.spmAccessCycles);
  out += " sharedBase=" + std::to_string(platform.sharedAccessBase(tile));
  return out;
}

std::string timingPlatformSlice(const adl::Platform& platform) {
  std::string out;
  for (int t = 0; t < platform.coreCount(); ++t) {
    out += "tile " + std::to_string(t) + " " + tileTimingSlice(platform, t);
    out += '\n';
  }
  return out;
}

support::StageKey transformsKey(std::string_view modelIrText,
                                const adl::Platform& platform,
                                bool runTransforms, bool spmAllocation) {
  support::Hasher h;
  h.str("transforms").str(modelIrText);
  h.boolean(runTransforms).boolean(spmAllocation);
  // The SPM slice only matters when the allocation pass runs, but keying
  // it unconditionally costs at most a spurious miss, never a wrong hit.
  h.str(transformPlatformSlice(platform));
  return h.finish();
}

support::StageKey sequentialWcetKey(const support::StageKey& transformedIr,
                                    const adl::Platform& platform) {
  support::Hasher h;
  h.str("seqwcet").key(transformedIr).str(tileTimingSlice(platform, 0));
  return h.finish();
}

support::StageKey expansionKey(const support::StageKey& transformedIr,
                               int chunksPerLoop, bool mergeScalarChains) {
  support::Hasher h;
  h.str("expand").key(transformedIr);
  h.i32(chunksPerLoop).boolean(mergeScalarChains);
  return h.finish();
}

support::StageKey timingsKey(const support::StageKey& expansion,
                             const adl::Platform& platform) {
  support::Hasher h;
  h.str("timings").key(expansion).str(timingPlatformSlice(platform));
  return h.finish();
}

support::StageKey scheduleKey(const support::StageKey& timings,
                              const adl::Platform& platform,
                              const sched::SchedOptions& options,
                              syswcet::InterferenceMethod method) {
  support::Hasher h;
  h.str("schedule").key(timings).str(platform.canonicalText());
  h.str(options.policy);
  h.boolean(options.interferenceAware);
  h.i32(options.coreLimit);
  h.i32(options.bnbTaskLimit);
  h.i64(options.bnbNodeBudget);
  h.i32(options.bnbFrontierDepth);
  h.i32(options.saIterations);
  h.f64(options.saInitialTemp);
  h.u64(options.seed);
  h.i32(options.saRestarts);
  // options.parallelThreads is deliberately NOT keyed: it selects how the
  // bit-identical result is computed, not what it is.
  h.i32(static_cast<std::int32_t>(method));
  return h.finish();
}

}  // namespace argo::core
