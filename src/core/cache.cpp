#include "core/cache.h"

namespace argo::core {

ToolchainCacheStats ToolchainCache::stats() const noexcept {
  ToolchainCacheStats s;
  s.transforms = transforms.stats();
  s.sequentialWcet = sequentialWcet.stats();
  s.expansion = expansion.stats();
  s.timings = timings.stats();
  s.schedules = schedules.stats();
  return s;
}

std::string transformPlatformSlice(const adl::Platform& platform) {
  const adl::CoreModel& core = platform.tile(0).core;
  std::string out = "spmBytes=" + std::to_string(core.spmBytes);
  out += " spmAccess=" + std::to_string(core.spmAccessCycles);
  out += " sharedBase=" + std::to_string(platform.sharedAccessBase(0));
  return out;
}

std::string tileTimingSlice(const adl::Platform& platform, int tile) {
  const adl::CoreModel& core = platform.tile(tile).core;
  std::string out = "ops[";
  for (std::size_t i = 0; i < core.opCycles.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(core.opCycles[i]);
  }
  out += "] local=" + std::to_string(core.localAccessCycles);
  out += " spm=" + std::to_string(core.spmAccessCycles);
  out += " sharedBase=" + std::to_string(platform.sharedAccessBase(tile));
  return out;
}

std::string timingPlatformSlice(const adl::Platform& platform) {
  std::string out;
  for (int t = 0; t < platform.coreCount(); ++t) {
    out += "tile " + std::to_string(t) + " " + tileTimingSlice(platform, t);
    out += '\n';
  }
  return out;
}

support::StageKey transformsKey(std::string_view modelIrText,
                                const adl::Platform& platform,
                                bool runTransforms, bool spmAllocation) {
  support::Hasher h;
  h.str("transforms").str(modelIrText);
  h.boolean(runTransforms).boolean(spmAllocation);
  // The SPM slice only matters when the allocation pass runs, but keying
  // it unconditionally costs at most a spurious miss, never a wrong hit.
  h.str(transformPlatformSlice(platform));
  return h.finish();
}

support::StageKey sequentialWcetKey(const support::StageKey& transformedIr,
                                    const adl::Platform& platform) {
  support::Hasher h;
  h.str("seqwcet").key(transformedIr).str(tileTimingSlice(platform, 0));
  return h.finish();
}

support::StageKey expansionKey(const support::StageKey& transformedIr,
                               int chunksPerLoop, bool mergeScalarChains) {
  support::Hasher h;
  h.str("expand").key(transformedIr);
  h.i32(chunksPerLoop).boolean(mergeScalarChains);
  return h.finish();
}

support::StageKey timingsKey(const support::StageKey& expansion,
                             const adl::Platform& platform) {
  support::Hasher h;
  h.str("timings").key(expansion).str(timingPlatformSlice(platform));
  return h.finish();
}

support::StageKey scheduleKey(const support::StageKey& timings,
                              const adl::Platform& platform,
                              const sched::SchedOptions& options,
                              syswcet::InterferenceMethod method) {
  support::Hasher h;
  h.str("schedule").key(timings).str(platform.canonicalText());
  h.str(options.policy);
  h.boolean(options.interferenceAware);
  h.i32(options.coreLimit);
  h.i32(options.bnbTaskLimit);
  h.i64(options.bnbNodeBudget);
  h.i32(options.bnbFrontierDepth);
  h.i32(options.saIterations);
  h.f64(options.saInitialTemp);
  h.u64(options.seed);
  h.i32(options.saRestarts);
  // options.parallelThreads is deliberately NOT keyed: it selects how the
  // bit-identical result is computed, not what it is.
  h.i32(static_cast<std::int32_t>(method));
  return h.finish();
}

}  // namespace argo::core
