// The ARGO tool-chain driver: the workflow of the paper's Figure 1.
//
//   model  ->  IR  ->  transforms  ->  HTG  ->  schedule/map  ->
//   explicit parallel program  ->  code-level + system-level WCET
//            ^                                        |
//            +---------- cross-layer feedback --------+
//
// The driver owns the cross-layer iterative optimization of Section II-E:
// the system-level WCET of each candidate parallelization (task granularity
// x scheduling policy) is fed back, and the best candidate is kept. This is
// the tool-chain's answer to the phase-ordering problem: granularity
// decisions cannot be made well before interference costs are known, so
// they are revisited after measuring them.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "adl/platform.h"
#include "codegen/codegen.h"
#include "htg/htg.h"
#include "model/diagram.h"
#include "par/parallel_program.h"
#include "sched/scheduler.h"
#include "syswcet/system_wcet.h"

namespace argo::core {

using adl::Cycles;

class ToolchainCache;

/// Driver configuration.
struct ToolchainOptions {
  /// Scheduling options forwarded to every candidate evaluation,
  /// including the policy registry name (sched/options.h).
  sched::SchedOptions sched;
  /// Candidate chunks-per-loop values explored by the feedback loop
  /// (counts, default empty = the power-of-two ladder {1, 2, ...,
  /// 2*cores}).
  std::vector<int> chunkCandidates;
  /// Run the predictability transforms — constant folding, index-set
  /// splitting, loop fusion (default true).
  bool runTransforms = true;
  /// Run the scratchpad allocation pass (default true).
  bool spmAllocation = true;
  /// Merge consecutive loop-free HTG nodes into one task (default true;
  /// removes the synchronization overhead of scalar glue code — see
  /// htg::ExpandOptions).
  bool mergeScalarChains = true;
  /// Interference accounting for the system-level analysis (default
  /// MhpRefined, the ARGO approach; AllContenders is the pessimistic
  /// baseline).
  syswcet::InterferenceMethod interference =
      syswcet::InterferenceMethod::MhpRefined;
  /// Worker threads for the cross-layer feedback exploration: each
  /// (chunks-per-loop x core-limit) candidate is scheduled and analyzed
  /// independently, so they are evaluated on a work-stealing pool through
  /// the shared support::parallelFor layer. 0 = one per hardware thread, 1 = sequential
  /// in-place evaluation. The chosen candidate, feedback ordering, and
  /// report are bit-identical either way: candidates are reduced in ladder
  /// order after the parallel phase. When the exploration is pooled, the
  /// per-candidate scheduler runs its own phases sequentially (pools do
  /// not nest), overriding sched.parallelThreads for the inner runs.
  int explorationThreads = 0;
  /// Optional content-hash stage cache (core/cache.h). When set, run()
  /// memoizes its stages — transforms, sequential WCET, HTG expansion,
  /// per-task timings, schedule/system-WCET — on hashes of exactly the
  /// inputs each stage observes, and a cache shared across runs (a
  /// platform sweep, an incremental re-run, the future argod service)
  /// reuses everything whose inputs did not change. null (the default)
  /// disables memoization entirely: no hashing, no serialization, the
  /// pre-cache code path. Results are byte-identical either way.
  std::shared_ptr<ToolchainCache> cache;
};

/// Wall-clock duration of one tool-chain stage (for E10).
struct StageTiming {
  std::string stage;
  double milliseconds = 0.0;
};

/// One point of the cross-layer feedback exploration (for E8).
struct FeedbackPoint {
  int chunksPerLoop = 0;
  /// 0 = all cores available; 1 = the sequential-mapping fallback the
  /// feedback loop always evaluates (so parallelization is only chosen
  /// when it actually beats one core).
  int coreLimit = 0;
  Cycles systemWcet = 0;
  int tasks = 0;
};

/// Everything the tool-chain produced. Heap-owned members keep internal
/// pointers (TaskGraph -> Function, ParallelProgram -> TaskGraph) stable
/// across moves of the result object.
struct ToolchainResult {
  std::unique_ptr<ir::Function> fn;
  ir::Environment constants;
  std::unique_ptr<htg::TaskGraph> graph;
  std::vector<sched::TaskTiming> timings;
  sched::Schedule schedule;
  par::ParallelProgram program;
  syswcet::SystemWcet system;

  /// WCET of the whole (transformed) function on tile 0, single core.
  Cycles sequentialWcet = 0;
  /// sequentialWcet / system.makespan — the guaranteed speedup.
  [[nodiscard]] double wcetSpeedup() const {
    return system.makespan == 0
               ? 0.0
               : static_cast<double>(sequentialWcet) /
                     static_cast<double>(system.makespan);
  }

  std::vector<std::string> passesRun;
  std::vector<StageTiming> stages;
  std::vector<FeedbackPoint> feedback;
  int chosenChunks = 1;

  /// Multi-line human-readable summary (the cross-layer programming
  /// interface of Section II-E, in text form). Stage timings are
  /// wall-clock and vary run to run; pass `includeStageTimings = false`
  /// for a fully deterministic report (used by the determinism tests).
  [[nodiscard]] std::string reportText(bool includeStageTimings = true) const;
};

/// Runs the full tool-chain on a compiled model.
class Toolchain {
 public:
  Toolchain(adl::Platform platform, ToolchainOptions options)
      : platform_(std::move(platform)), options_(std::move(options)) {}

  /// The model is copied (function cloned); the input stays usable.
  [[nodiscard]] ToolchainResult run(const model::CompiledModel& model) const;

  /// Convenience: compile a diagram, then run.
  [[nodiscard]] ToolchainResult run(const model::Diagram& diagram) const;

  /// Warms the policy-independent stage prefix for `model` — transforms,
  /// sequential WCET, every candidate HTG expansion and its per-task
  /// timings — into the attached cache, so subsequent run() calls (for
  /// any policy on this platform) start at the schedule stage. No-op
  /// without a cache. scenarios::runEval uses this as the shared
  /// upstream node that per-policy toolchain nodes fan out from on the
  /// TaskGraph executor.
  void warmSharedStages(const model::CompiledModel& model) const;

  /// The emit step (paper Section II-C: "generate C code following the
  /// WCET-aware programming model"): lowers the scheduled parallel program
  /// of a finished run to compilable C, with `trace` as the recorded
  /// inputs the emitted harness replays and `options` selecting the
  /// execution mode of the emitted harness (sequential replay or one
  /// pthread per tile) and the optional runtime deadline asserts. Pure
  /// function of (result, platform, trace, options) — the sources are
  /// byte-identical across runs and thread counts (docs/CODEGEN.md).
  [[nodiscard]] codegen::Emission emitC(
      const ToolchainResult& result, const codegen::InputTrace& trace,
      const codegen::EmitOptions& options = {}) const;

  [[nodiscard]] const adl::Platform& platform() const noexcept {
    return platform_;
  }

 private:
  adl::Platform platform_;
  ToolchainOptions options_;
};

}  // namespace argo::core
